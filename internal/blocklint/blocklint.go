// Package blocklint is the static semantic analyzer over decoded x86-64
// basic blocks: it predicts, without running the machine, how the BHive
// measurement protocol will classify a block, and computes per-block facts
// (def-use chains, loop-carried dependence height, memory-operand address
// classification, encode/decode round-trip fidelity).
//
// The core is an abstract interpreter (absexec.go) that mirrors
// internal/exec bit-exactly for the modeled integer subset, over a
// Known/Unknown value domain, and replays the profiler's exact run
// sequence: the monitored mapping run and the timed run at the high unroll
// factor, then both again at the low factor, with memory persisting across
// runs and registers re-initialized — exactly what internal/profiler
// executes. Because every Unknown is propagated conservatively, a non-OK
// prediction is a guarantee: the dynamic protocol must reject the block
// with that status (or with one of the whitelisted timing-only preemptions
// — see Report.Agrees). That soundness property is what makes the
// -prescreen mode of bhive-eval/bhive-profile safe: skipping a statically
// rejected block never discards a measurable one.
//
// Every finding carries a machine-readable diagnostic code (BL001…); the
// catalogue is in DESIGN.md § Static block analysis.
package blocklint

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"reflect"

	"bhive/internal/bound"
	"bhive/internal/memo"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Code is a machine-readable diagnostic code.
type Code int

const (
	// CodeNoDecode (BL001): the hex does not decode as a basic block.
	CodeNoDecode Code = 1 + iota
	// CodeEmpty (BL002): the block has no instructions.
	CodeEmpty
	// CodeNoEncode (BL003): an instruction has no encoding, so the
	// profiler's Prepare step fails.
	CodeNoEncode
	// CodeRoundTripMismatch (BL004): decode→encode→decode does not
	// reproduce the instruction sequence.
	CodeRoundTripMismatch
	// CodeRoundTripLossy (BL005): the block re-encodes to different bytes
	// that decode back to the same instructions (a known-lossy encoding).
	CodeRoundTripLossy
	// CodeUnsupported (BL006): the target microarchitecture cannot
	// execute an instruction (e.g. AVX2 on Ivy Bridge).
	CodeUnsupported
	// CodeBadAddress (BL007): a memory access is guaranteed to fault in a
	// way the monitor cannot repair (invalid user address, or a fault in
	// an unmonitored timed run).
	CodeBadAddress
	// CodeDivideError (BL008): a division is guaranteed to raise #DE.
	CodeDivideError
	// CodePageBudget (BL009): the block touches more distinct pages than
	// the monitor's MaxFaults budget.
	CodePageBudget
	// CodeLineSplit (BL010): a timed-run access is guaranteed to cross a
	// cache-line boundary, so the misaligned filter rejects the block.
	CodeLineSplit
	// CodeNoMapping (BL011): the block accesses memory while page mapping
	// is disabled (the Agner-script baseline crashes on any access).
	CodeNoMapping
	// CodeInexact (BL012): unknown values reached a point that may crash;
	// the prediction is conservative (OK unless proven otherwise).
	CodeInexact
	// CodeUnmodeled (BL013): a vector/unmodeled instruction was treated
	// conservatively (its outputs are unknown to the analyzer).
	CodeUnmodeled
	// CodeNoExec (BL014): the functional executor does not implement the
	// instruction, so execution is guaranteed to crash.
	CodeNoExec
	// CodeVacuousBounds (BL015): an instruction's opcode is missing from
	// the µop table, so its descriptor is the generic single-cycle ALU
	// fallback and the block's static cycle bounds are vacuous — they
	// still hold against the simulator (which uses the same fallback) but
	// say nothing about real hardware. Each firing is a table-coverage
	// gap.
	CodeVacuousBounds

	numCodes
)

// String renders the code in its canonical "BL007" form.
func (c Code) String() string { return fmt.Sprintf("BL%03d", int(c)) }

// MarshalText makes diagnostic codes render as "BL007" in JSON output.
func (c Code) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// Severity classifies a diagnostic's weight.
type Severity int

const (
	// SevInfo diagnostics describe analysis limitations or benign facts.
	SevInfo Severity = iota
	// SevWarn diagnostics are suspicious but do not change the verdict.
	SevWarn
	// SevReject diagnostics determine a non-OK predicted status.
	SevReject
)

func (s Severity) String() string {
	switch s {
	case SevReject:
		return "reject"
	case SevWarn:
		return "warn"
	}
	return "info"
}

// Severity returns the diagnostic class of a code.
func (c Code) Severity() Severity {
	switch c {
	case CodeNoDecode, CodeEmpty, CodeNoEncode, CodeUnsupported,
		CodeBadAddress, CodeDivideError, CodePageBudget, CodeLineSplit,
		CodeNoMapping, CodeNoExec:
		return SevReject
	case CodeRoundTripMismatch:
		return SevWarn
	}
	return SevInfo
}

// Diag is one finding, anchored to an instruction when one is at fault.
type Diag struct {
	Code Code `json:"code"`
	// Inst is the index of the offending instruction within the block
	// (-1 for block-level findings).
	Inst int `json:"inst"`
	// Offset is the byte offset of that instruction within the encoded
	// block (-1 when unknown).
	Offset int    `json:"offset"`
	Msg    string `json:"msg"`
}

func (d Diag) String() string {
	where := ""
	if d.Inst >= 0 {
		where = fmt.Sprintf(" inst %d", d.Inst)
		if d.Offset >= 0 {
			where += fmt.Sprintf(" (offset %d)", d.Offset)
		}
	}
	return fmt.Sprintf("%s%s: %s", d.Code, where, d.Msg)
}

// Report is the typed result of analyzing one block.
type Report struct {
	// Hex is the block's canonical hex (empty if it does not encode).
	Hex string `json:"hex,omitempty"`
	// NumInsts is the decoded instruction count.
	NumInsts int `json:"num_insts"`
	// Predicted is the profiler.Status the analysis predicts for the
	// block under the analyzer's options.
	Predicted profiler.Status `json:"-"`
	// PredictedName is Predicted's string form, for JSON output.
	PredictedName string `json:"predicted"`
	// Exact reports whether the prediction is a guarantee in both
	// directions: a non-OK prediction is always guaranteed; an OK
	// prediction is guaranteed crash-free only when Exact (timing-only
	// outcomes — cache-miss, unstable — remain possible either way).
	Exact bool `json:"exact"`
	// Diags lists every finding, reject-severity first.
	Diags []Diag `json:"diags,omitempty"`
	// Facts carries the per-block static facts (nil when the block does
	// not decode).
	Facts *Facts `json:"facts,omitempty"`
	// Bounds carries the static cycle-bound analysis (nil when the block
	// does not decode or describe).
	Bounds *bound.Bounds `json:"bounds,omitempty"`
}

// Rejected reports whether the block is statically rejected: the
// prediction is a non-OK status, which the analyzer only emits when it is
// guaranteed. Prescreening skips exactly these blocks.
func (r *Report) Rejected() bool { return r.Predicted != profiler.StatusOK }

// Agrees reports whether a dynamic profiling status is consistent with
// the static prediction. Exact agreement always is; beyond it, the
// whitelisted pairs are:
//
//   - predicted OK, inexact: unknown values limited the analysis, so any
//     dynamic outcome except Unsupported is possible (support is decided
//     purely statically and is never inexact);
//   - predicted OK, exact: the timing-only rejects (cache-miss, unstable)
//     cannot be ruled out statically;
//   - predicted Misaligned: the sample-acceptance and cache-miss checks
//     run before the misaligned filter and may preempt it.
//
// Everything else is a genuine disagreement — one of the two sides is
// wrong about the machine.
func (r *Report) Agrees(dyn profiler.Status) bool {
	if r.Predicted == dyn {
		return true
	}
	switch r.Predicted {
	case profiler.StatusOK:
		if !r.Exact {
			return dyn != profiler.StatusUnsupported
		}
		return dyn == profiler.StatusCacheMiss || dyn == profiler.StatusUnstable
	case profiler.StatusMisaligned:
		return dyn == profiler.StatusCacheMiss || dyn == profiler.StatusUnstable
	}
	return false
}

// Analyzer analyzes blocks for one microarchitecture under one set of
// measurement options. It is stateless and safe for concurrent use.
type Analyzer struct {
	CPU  *uarch.CPU
	Opts profiler.Options

	// LegacyDepHeights restores the pre-bound dependence-height model for
	// Facts (string-resource def-use over summed µop latencies, including
	// store µops and address reads on every instruction). The default
	// model is internal/bound's simulator-congruent chain analysis, which
	// the static cycle bounds are built on.
	LegacyDepHeights bool
}

// New builds an analyzer mirroring a profiler.New(cpu, opts).
func New(cpu *uarch.CPU, opts profiler.Options) *Analyzer {
	return &Analyzer{CPU: cpu, Opts: opts}
}

// AnalyzeHex analyzes a block given as corpus machine-code hex. Undecodable
// input yields a report with CodeNoDecode and a Crashed prediction (such a
// row cannot be profiled at all).
func (a *Analyzer) AnalyzeHex(hexStr string) *Report {
	raw, err := hex.DecodeString(hexStr)
	if err != nil {
		return &Report{
			Predicted:     profiler.StatusCrashed,
			PredictedName: profiler.StatusCrashed.String(),
			Exact:         true,
			Diags:         []Diag{{Code: CodeNoDecode, Inst: -1, Offset: -1, Msg: fmt.Sprintf("not hex: %v", err)}},
		}
	}
	insts, err := x86.DecodeBlock(raw)
	if err != nil {
		d := Diag{Code: CodeNoDecode, Inst: -1, Offset: -1, Msg: err.Error()}
		if de, ok := err.(*x86.DecodeErr); ok {
			d.Inst, d.Offset = de.Index, de.Offset
		}
		return &Report{
			Hex:           hexStr,
			Predicted:     profiler.StatusCrashed,
			PredictedName: profiler.StatusCrashed.String(),
			Exact:         true,
			Diags:         []Diag{d},
		}
	}
	return a.analyze(&x86.Block{Insts: insts}, raw)
}

// Analyze analyzes a decoded block.
func (a *Analyzer) Analyze(b *x86.Block) *Report { return a.analyze(b, nil) }

// analyze runs the full pipeline; orig, when non-nil, is the block's
// original encoding (for round-trip fidelity checking).
func (a *Analyzer) analyze(b *x86.Block, orig []byte) *Report {
	rep := &Report{NumInsts: len(b.Insts), Predicted: profiler.StatusOK, Exact: true}
	defer func() {
		rep.PredictedName = rep.Predicted.String()
		sortDiags(rep.Diags)
	}()

	// Mirror profiler.Profile: the empty block is Crashed outright.
	if len(b.Insts) == 0 {
		rep.Predicted = profiler.StatusCrashed
		rep.addDiag(Diag{Code: CodeEmpty, Inst: -1, Offset: -1, Msg: "empty block cannot be profiled"})
		return rep
	}

	n := len(b.Insts)
	lo, hi := a.Opts.UnrollFactors(n)

	// Mirror machine.PrepareUnrolled: encode then describe each distinct
	// instruction in order; the first failure decides the status.
	raws := make([][]byte, n)
	descs := make([]uarch.Desc, n)
	offsets := make([]int, n)
	off := 0
	for i := 0; i < n; i++ {
		offsets[i] = off
		raw, err := memo.Encode(&b.Insts[i])
		if err != nil {
			rep.Predicted = profiler.StatusCrashed
			rep.addDiag(Diag{Code: CodeNoEncode, Inst: i, Offset: off,
				Msg: fmt.Sprintf("%s: %v", b.Insts[i].String(), err)})
			return rep
		}
		d, err := memo.Describe(a.CPU, &b.Insts[i])
		if err != nil {
			if _, ok := err.(*uarch.UnsupportedError); ok {
				rep.Predicted = profiler.StatusUnsupported
				rep.addDiag(Diag{Code: CodeUnsupported, Inst: i, Offset: off, Msg: err.Error()})
			} else {
				rep.Predicted = profiler.StatusCrashed
				rep.addDiag(Diag{Code: CodeNoEncode, Inst: i, Offset: off, Msg: err.Error()})
			}
			return rep
		}
		raws[i] = raw
		descs[i] = d
		off += len(raw)
	}

	var code []byte
	for i := 0; i < n; i++ {
		code = append(code, raws[i]...)
	}
	rep.Hex = hex.EncodeToString(code)
	a.roundTrip(rep, b.Insts, code, orig)

	rep.Facts = computeFacts(b.Insts, descs, offsets, lo, hi, len(code)*hi)

	// Static cycle bounds over the same descriptors; unless the legacy
	// model is requested, the dependence facts come from the same
	// simulator-congruent chain analysis the bounds use (rename-aware,
	// address/data asymmetric, store µops excluded from chains).
	rep.Bounds = bound.FromDescs(a.CPU, b.Insts, descs)
	if !a.LegacyDepHeights {
		rep.Facts.CritLatency = rep.Bounds.CritPath
		rep.Facts.DepHeight = int(rep.Bounds.DepChain + 0.5)
	}
	for i := range descs {
		if descs[i].Generic {
			rep.addDiag(Diag{Code: CodeVacuousBounds, Inst: i, Offset: offsets[i],
				Msg: fmt.Sprintf("%s: no µop table entry; bounds assume the generic 1-cycle ALU fallback", b.Insts[i].String())})
		}
	}

	// The abstract replay of the measurement protocol.
	it := newInterp(a, b.Insts, raws, hi)
	status, exact := it.replay(lo, hi)
	rep.Predicted = status
	rep.Exact = exact
	rep.Diags = append(rep.Diags, it.diags...)
	it.fillMemFacts(rep.Facts)
	return rep
}

// roundTrip checks decode→encode→decode fidelity: code is the block's
// canonical re-encoding, orig its original bytes (nil if unknown).
func (a *Analyzer) roundTrip(rep *Report, insts []x86.Inst, code, orig []byte) {
	again, err := x86.DecodeBlock(code)
	if err != nil {
		d := Diag{Code: CodeRoundTripMismatch, Inst: -1, Offset: -1,
			Msg: fmt.Sprintf("re-encoded block does not decode: %v", err)}
		if de, ok := err.(*x86.DecodeErr); ok {
			d.Inst, d.Offset = de.Index, de.Offset
		}
		rep.addDiag(d)
		return
	}
	if len(again) != len(insts) {
		rep.addDiag(Diag{Code: CodeRoundTripMismatch, Inst: -1, Offset: -1,
			Msg: fmt.Sprintf("round trip yields %d instructions, want %d", len(again), len(insts))})
		return
	}
	for i := range insts {
		if !reflect.DeepEqual(insts[i], again[i]) {
			rep.addDiag(Diag{Code: CodeRoundTripMismatch, Inst: i, Offset: -1,
				Msg: fmt.Sprintf("round trip changes %s to %s", insts[i].String(), again[i].String())})
			return
		}
	}
	if orig != nil && !bytes.Equal(orig, code) {
		rep.addDiag(Diag{Code: CodeRoundTripLossy, Inst: -1, Offset: -1,
			Msg: fmt.Sprintf("re-encodes to %d bytes differing from the %d original (same instructions)", len(code), len(orig))})
	}
}

func (r *Report) addDiag(d Diag) { r.Diags = append(r.Diags, d) }

// sortDiags orders reject diagnostics first, then warns, then infos,
// preserving discovery order within a severity.
func sortDiags(ds []Diag) {
	if len(ds) < 2 {
		return
	}
	ordered := make([]Diag, 0, len(ds))
	for sev := SevReject; sev >= SevInfo; sev-- {
		for _, d := range ds {
			if d.Code.Severity() == sev {
				ordered = append(ordered, d)
			}
		}
	}
	copy(ds, ordered)
}
