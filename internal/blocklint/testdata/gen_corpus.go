//go:build ignore

// gen_corpus regenerates example_corpus.csv: a small generated corpus
// slice plus handcrafted pathological rows that exercise every reject
// diagnostic. Run from the repo root:
//
//	go run internal/blocklint/testdata/gen_corpus.go > internal/blocklint/testdata/example_corpus.csv
package main

import (
	"fmt"
	"os"

	"bhive/internal/corpus"
)

func main() {
	recs := corpus.GenerateAll(0.002, 7)
	fmt.Println("app,hex,freq")
	for _, r := range recs {
		hexStr, err := r.Block.Hex()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gen_corpus:", err)
			os.Exit(1)
		}
		fmt.Printf("%s,%s,%d\n", r.App, hexStr, r.Freq)
	}
	// Pathological rows, one per reject diagnostic the auditor catalogues.
	for _, row := range []struct{ app, hex string }{
		{"pathological", "zz"},                   // BL001: not hex
		{"pathological", "4889c8ff"},             // BL001: truncated instruction
		{"pathological", "31c9f7f1"},             // BL008: guaranteed #DE
		{"pathological", "488b413f"},             // BL010: line-splitting load
		{"pathological", "488b81000000ed"},       // BL007: non-canonical address
		{"pathological", "4881c300100000488b03"}, // BL009: page-budget blowout
	} {
		fmt.Printf("%s,%s,1\n", row.app, row.hex)
	}
}
