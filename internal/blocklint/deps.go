package blocklint

import (
	"math/bits"

	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Facts carries the per-block static facts the analyzer derives without
// running the machine (plus observed-address aggregates from the abstract
// replay, filled in by interp.fillMemFacts).
type Facts struct {
	// NumInsts is the block length in instructions.
	NumInsts int `json:"num_insts"`
	// UnrollLo and UnrollHi are the unroll factors the profiler will use
	// for this block under the analyzer's options.
	UnrollLo int `json:"unroll_lo"`
	UnrollHi int `json:"unroll_hi"`
	// CodeBytes is the encoded size of the hi-unrolled program — the
	// instruction footprint the L1I cache must hold.
	CodeBytes int `json:"code_bytes"`
	// DepHeight is the steady-state latency of one iteration's critical
	// dependence chain, in cycles: the increase in completion time per
	// additional unrolled copy once carried chains dominate. 0 means no
	// loop-carried dependence constrains throughput.
	DepHeight int `json:"dep_height"`
	// CritLatency is the latency-weighted critical path through a single
	// iteration starting from clean state.
	CritLatency int `json:"crit_latency"`
	// LoopCarried lists the resources (registers, "flags") that are both
	// written by the block and consumed by the next iteration before being
	// overwritten — the carriers of cross-iteration dependences.
	LoopCarried []string `json:"loop_carried,omitempty"`
	// DefUse lists the intra-block def-use edges.
	DefUse []DepEdge `json:"def_use,omitempty"`
	// Mem describes every memory-accessing instruction.
	Mem []MemFact `json:"mem,omitempty"`
}

// DepEdge is one def-use edge: To reads a resource last written by From.
// A carried edge (From in the previous iteration) has Carried set.
type DepEdge struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	Resource string `json:"resource"`
	Carried  bool   `json:"carried,omitempty"`
}

// MemFact describes one memory-accessing instruction: the static shape of
// its address operand plus, when the abstract replay observed concrete
// addresses, the realized access pattern in the timed run.
type MemFact struct {
	// Inst and Offset locate the instruction in the block.
	Inst   int `json:"inst"`
	Offset int `json:"offset"`
	// Class is the static address shape: "rsp-relative", "rip-relative",
	// "absolute", "indexed", or "base-relative".
	Class string `json:"class"`
	// Loads and Stores report the access direction; both for RMW forms.
	Loads  bool `json:"loads"`
	Stores bool `json:"stores"`
	// Size is the access width in bytes.
	Size int `json:"size"`
	// Disp is the static displacement; DispMod64 is its residue in the
	// cache line, which decides line-splitting for aligned bases.
	Disp      int32 `json:"disp"`
	DispMod64 int   `json:"disp_mod64"`

	// Observed reports whether the abstract replay saw only concrete
	// addresses for this instruction; the fields below are then exact for
	// the timed run at the high unroll factor.
	Observed bool `json:"observed"`
	// Accesses is the number of accesses in that run.
	Accesses int `json:"accesses,omitempty"`
	// Align is the largest power of two dividing every observed address.
	Align uint64 `json:"align,omitempty"`
	// Stride is the constant inter-access address delta; StrideKnown is
	// false when the deltas vary (or only one access was seen).
	Stride      int64 `json:"stride,omitempty"`
	StrideKnown bool  `json:"stride_known,omitempty"`
	// Pages is the number of distinct virtual pages touched.
	Pages int `json:"pages,omitempty"`
	// Splits reports whether any observed access crossed a cache line.
	Splits bool `json:"splits,omitempty"`
}

// resName names a dependence-tracking resource.
func resName(r x86.Reg) string { return r.Base64().String() }

const flagsRes = "flags"

// instLatency reduces a uarch descriptor to one chain latency: the sum of
// the µop latencies in program order (load feeding compute feeding store),
// which is the latency a dependent instruction observes through the
// longest internal chain. Rename-eliminated idioms contribute nothing.
func instLatency(d uarch.Desc) int {
	if d.ZeroIdiom || d.EliminatedMove {
		return 0
	}
	lat := 0
	for _, u := range d.Uops {
		lat += int(u.Lat)
	}
	return lat
}

// reads returns the resources an instruction consumes, writes the ones it
// defines, using the decoder's register-level IO tables plus the flags
// pseudo-resource.
func reads(in *x86.Inst) []string {
	var out []string
	for _, r := range in.RegReads() {
		out = append(out, resName(r))
	}
	if in.Op.ReadsFlags() {
		out = append(out, flagsRes)
	}
	return out
}

func writes(in *x86.Inst) []string {
	var out []string
	for _, r := range in.RegWrites() {
		out = append(out, resName(r))
	}
	if in.Op.WritesFlags() {
		out = append(out, flagsRes)
	}
	return out
}

// computeFacts derives the static facts for one block. descs and offsets
// are indexed like insts; codeBytes is the hi-unrolled footprint.
func computeFacts(insts []x86.Inst, descs []uarch.Desc, offsets []int, lo, hi, codeBytes int) *Facts {
	n := len(insts)
	f := &Facts{
		NumInsts:  n,
		UnrollLo:  lo,
		UnrollHi:  hi,
		CodeBytes: codeBytes,
	}

	lats := make([]int, n)
	rds := make([][]string, n)
	wrs := make([][]string, n)
	for i := range insts {
		lats[i] = instLatency(descs[i])
		rds[i] = reads(&insts[i])
		wrs[i] = writes(&insts[i])
	}

	// Def-use edges within one iteration and carried into the next.
	// lastDef maps resource -> defining instruction of the current
	// iteration; resources still undefined at a read come from the
	// previous iteration's writer (a carried edge) if the block writes
	// them at all.
	finalDef := map[string]int{}
	for i := n - 1; i >= 0; i-- {
		for _, w := range wrs[i] {
			if _, ok := finalDef[w]; !ok {
				finalDef[w] = i
			}
		}
	}
	lastDef := map[string]int{}
	seenEdge := map[DepEdge]bool{}
	for i := 0; i < n; i++ {
		for _, r := range rds[i] {
			var e DepEdge
			if def, ok := lastDef[r]; ok {
				e = DepEdge{From: def, To: i, Resource: r}
			} else if def, ok := finalDef[r]; ok {
				e = DepEdge{From: def, To: i, Resource: r, Carried: true}
				if !containsStr(f.LoopCarried, r) {
					f.LoopCarried = append(f.LoopCarried, r)
				}
			} else {
				continue // read of pristine initial state
			}
			if !seenEdge[e] {
				seenEdge[e] = true
				f.DefUse = append(f.DefUse, e)
			}
		}
		for _, w := range wrs[i] {
			lastDef[w] = i
		}
	}

	f.CritLatency, f.DepHeight = depHeights(lats, rds, wrs)

	// Static memory-operand classification (observed fields come later).
	for i := range insts {
		in := &insts[i]
		k := in.MemArg()
		if k < 0 || in.Op == x86.LEA {
			continue
		}
		rd, wr := in.ArgIO(k)
		m := in.Args[k].Mem
		mf := MemFact{
			Inst:      i,
			Offset:    offsets[i],
			Class:     classifyAddr(m),
			Loads:     rd,
			Stores:    wr,
			Size:      int(m.Size),
			Disp:      m.Disp,
			DispMod64: int(((int64(m.Disp) % 64) + 64) % 64),
		}
		f.Mem = append(f.Mem, mf)
	}
	return f
}

// classifyAddr buckets a memory operand by its static address shape.
func classifyAddr(m x86.Mem) string {
	switch {
	case m.Base == x86.RSP && m.Index == x86.RegNone:
		return "rsp-relative"
	case m.Base == x86.RIP:
		return "rip-relative"
	case m.Base == x86.RegNone && m.Index == x86.RegNone:
		return "absolute"
	case m.Index != x86.RegNone:
		return "indexed"
	}
	return "base-relative"
}

// depHeights runs the dataflow scheduling recurrence over unrolled
// iterations: each instruction becomes ready when its inputs are, and
// completes after its chain latency. The first-iteration maximum is the
// critical path from clean state; the per-iteration increase, once it
// stabilizes, is the loop-carried dependence height.
func depHeights(lats []int, rds, wrs [][]string) (crit, height int) {
	n := len(lats)
	t := map[string]int{}
	prevMax, first := 0, 0
	const iters = 8
	for iter := 0; iter < iters; iter++ {
		maxFin := prevMax
		for i := 0; i < n; i++ {
			ready := 0
			for _, r := range rds[i] {
				if v, ok := t[r]; ok && v > ready {
					ready = v
				}
			}
			fin := ready + lats[i]
			for _, w := range wrs[i] {
				t[w] = fin
			}
			if fin > maxFin {
				maxFin = fin
			}
		}
		if iter == 0 {
			first = maxFin
		}
		height = maxFin - prevMax
		prevMax = maxFin
	}
	return first, height
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// fillMemFacts merges the observed-address aggregates from the abstract
// replay's recorded timed run into the static memory facts.
func (it *interp) fillMemFacts(f *Facts) {
	if f == nil {
		return
	}
	for i := range f.Mem {
		mf := &f.Mem[i]
		agg := it.facts[mf.Inst]
		if agg == nil || !agg.allKnown {
			continue
		}
		mf.Observed = true
		mf.Accesses = agg.accesses
		if agg.orAddrs == 0 {
			mf.Align = 1 << 12
		} else {
			a := uint64(1) << uint(bits.TrailingZeros64(agg.orAddrs))
			if a > 1<<12 {
				a = 1 << 12
			}
			mf.Align = a
		}
		if agg.strideSet && agg.strideOK {
			mf.Stride = agg.stride
			mf.StrideKnown = true
		}
		mf.Pages = len(agg.pages)
		mf.Splits = agg.splits
	}
}
