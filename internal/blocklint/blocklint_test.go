package blocklint

import (
	"strings"
	"testing"

	"bhive/internal/corpus"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func defaultAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	cpu, err := uarch.ByName("haswell")
	if err != nil {
		t.Fatal(err)
	}
	return New(cpu, profiler.DefaultOptions())
}

func hasCode(rep *Report, c Code) bool {
	for _, d := range rep.Diags {
		if d.Code == c {
			return true
		}
	}
	return false
}

func TestAnalyzeHexRejectsNonHex(t *testing.T) {
	rep := defaultAnalyzer(t).AnalyzeHex("zz")
	if rep.Predicted != profiler.StatusCrashed || !rep.Exact {
		t.Fatalf("got %v exact=%v, want guaranteed crashed", rep.Predicted, rep.Exact)
	}
	if !hasCode(rep, CodeNoDecode) {
		t.Fatalf("want BL001, got %v", rep.Diags)
	}
}

func TestAnalyzeHexUndecodable(t *testing.T) {
	// mov rax,rcx followed by garbage: the decode error must carry the
	// index and offset of the failing instruction.
	rep := defaultAnalyzer(t).AnalyzeHex("4889c8ff")
	if !hasCode(rep, CodeNoDecode) {
		t.Fatalf("want BL001, got %v", rep.Diags)
	}
	d := rep.Diags[0]
	if d.Inst != 1 || d.Offset < 3 {
		t.Fatalf("diag location inst=%d offset=%d, want inst 1 at offset >= 3", d.Inst, d.Offset)
	}
}

// TestPredictions pins the verdicts for handcrafted pathological blocks.
func TestPredictions(t *testing.T) {
	a := defaultAnalyzer(t)
	tests := []struct {
		name string
		hex  string
		want profiler.Status
		code Code // 0 = no particular diagnostic required
	}{
		{"empty", "", profiler.StatusCrashed, CodeEmpty},
		{"reg-mov", "4889c8", profiler.StatusOK, 0},
		{"push", "50", profiler.StatusOK, 0},
		{"guaranteed-de", "31c9f7f1", profiler.StatusCrashed, CodeDivideError},
		{"line-split", "488b413f", profiler.StatusMisaligned, CodeLineSplit},
		{"noncanonical", "488b81000000ed", profiler.StatusCrashed, CodeBadAddress},
		{"page-budget", "4881c300100000488b03", profiler.StatusCrashed, CodePageBudget},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rep := a.AnalyzeHex(tc.hex)
			if rep.Predicted != tc.want {
				t.Fatalf("predicted %v, want %v (diags %v)", rep.Predicted, tc.want, rep.Diags)
			}
			if rep.Rejected() && !rep.Exact {
				t.Fatalf("non-OK prediction must be exact")
			}
			if tc.code != 0 && !hasCode(rep, tc.code) {
				t.Fatalf("want %v among %v", tc.code, rep.Diags)
			}
		})
	}
}

// TestBaselineNoMapping checks the Agner-script baseline: with page
// mapping disabled, any memory access is a guaranteed crash (BL011).
func TestBaselineNoMapping(t *testing.T) {
	cpu, _ := uarch.ByName("haswell")
	a := New(cpu, profiler.BaselineOptions())
	rep := a.AnalyzeHex("488b03") // mov rax,[rbx]
	if rep.Predicted != profiler.StatusCrashed || !hasCode(rep, CodeNoMapping) {
		t.Fatalf("got %v %v, want crashed with BL011", rep.Predicted, rep.Diags)
	}
}

// TestUnsupported checks BL006: AVX2 on Ivy Bridge is statically
// unsupported but fine on Haswell.
func TestUnsupported(t *testing.T) {
	const avx2 = "c5fdfec0" // vpaddd ymm0,ymm0,ymm0
	ivb, _ := uarch.ByName("ivybridge")
	if rep := New(ivb, profiler.DefaultOptions()).AnalyzeHex(avx2); rep.Predicted != profiler.StatusUnsupported || !hasCode(rep, CodeUnsupported) {
		t.Fatalf("ivybridge: got %v %v, want unsupported BL006", rep.Predicted, rep.Diags)
	}
	if rep := defaultAnalyzer(t).AnalyzeHex(avx2); rep.Predicted != profiler.StatusOK {
		t.Fatalf("haswell: got %v %v, want ok", rep.Predicted, rep.Diags)
	}
}

func TestVectorConservative(t *testing.T) {
	// movaps xmm1,[rcx]: the loaded data is unknown, but the address
	// (pattern-initialized rcx) is exact, so the verdict stays OK with a
	// BL013 note and an inexactness marker only if something may crash.
	rep := defaultAnalyzer(t).AnalyzeHex("0f280f01c8")
	if rep.Predicted != profiler.StatusOK {
		t.Fatalf("got %v %v", rep.Predicted, rep.Diags)
	}
	if !hasCode(rep, CodeUnmodeled) {
		t.Fatalf("want BL013 note, got %v", rep.Diags)
	}
}

func TestFacts(t *testing.T) {
	a := defaultAnalyzer(t)

	// add rax,rbx: rax is loop-carried with a 1-cycle chain.
	rep := a.AnalyzeHex("4801d8")
	if rep.Facts == nil {
		t.Fatal("no facts")
	}
	f := rep.Facts
	if f.DepHeight != 1 {
		t.Errorf("dep height %d, want 1", f.DepHeight)
	}
	found := false
	for _, r := range f.LoopCarried {
		if r == "rax" {
			found = true
		}
	}
	if !found {
		t.Errorf("rax not in loop-carried set %v", f.LoopCarried)
	}
	carried := false
	for _, e := range f.DefUse {
		if e.Resource == "rax" && e.Carried {
			carried = true
		}
	}
	if !carried {
		t.Errorf("no carried rax edge in %v", f.DefUse)
	}

	// imul rax,rax: carried chain at the multiplier's latency.
	rep = a.AnalyzeHex("480fafc0")
	if h := rep.Facts.DepHeight; h < 3 {
		t.Errorf("imul dep height %d, want multiplier latency", h)
	}

	// mov rcx,rcx-style independent work: no carried chain. Use xor
	// ecx,ecx (zero idiom, eliminated at rename).
	rep = a.AnalyzeHex("31c9")
	if h := rep.Facts.DepHeight; h != 0 {
		t.Errorf("zero idiom dep height %d, want 0", h)
	}

	// lea rax,[rax+8]: the simulator wires address deps only into load
	// µops, so the sim-congruent model reports no carried chain; the
	// legacy model charged the LEA latency.
	rep = a.AnalyzeHex("488d4008")
	if h := rep.Facts.DepHeight; h != 0 {
		t.Errorf("lea dep height %d, want 0 under the sim-congruent model", h)
	}
	legacy := New(a.CPU, a.Opts)
	legacy.LegacyDepHeights = true
	rep = legacy.AnalyzeHex("488d4008")
	if h := rep.Facts.DepHeight; h == 0 {
		t.Errorf("legacy lea dep height %d, want nonzero", h)
	}

	// mov rax,[rsp+8]: rsp-relative class, observed exact addresses.
	rep = a.AnalyzeHex("488b442408")
	if len(rep.Facts.Mem) != 1 {
		t.Fatalf("mem facts %v", rep.Facts.Mem)
	}
	m := rep.Facts.Mem[0]
	if m.Class != "rsp-relative" || !m.Loads || m.Stores {
		t.Errorf("bad mem fact %+v", m)
	}
	if !m.Observed || m.Pages != 1 || m.Splits {
		t.Errorf("bad observed fields %+v", m)
	}
	if !m.StrideKnown || m.Stride != 0 {
		t.Errorf("constant address should have zero stride: %+v", m)
	}

	// mov rax,[rcx+rdx*8]: indexed class.
	rep = a.AnalyzeHex("488b04d1")
	if rep.Facts.Mem[0].Class != "indexed" {
		t.Errorf("class %q, want indexed", rep.Facts.Mem[0].Class)
	}
}

func TestUnrollFactorsExported(t *testing.T) {
	o := profiler.DefaultOptions()
	lo, hi := o.UnrollFactors(1)
	if lo != 50 || hi != 100 {
		t.Fatalf("n=1: %d/%d", lo, hi)
	}
	lo, hi = o.UnrollFactors(30)
	if lo != 4 || hi != 8 {
		t.Fatalf("n=30: %d/%d", lo, hi)
	}
	o.DerivedThroughput = false
	if _, hi = o.UnrollFactors(5); hi != o.NaiveUnroll {
		t.Fatalf("naive hi %d", hi)
	}
}

// TestAgreementHandcrafted cross-checks the static prediction against the
// simulator-backed profiler for every handcrafted block.
func TestAgreementHandcrafted(t *testing.T) {
	cpu, _ := uarch.ByName("haswell")
	opts := profiler.DefaultOptions()
	a := New(cpu, opts)
	p := profiler.New(cpu, opts)
	blocks := []string{
		"4889c8",               // mov rax,rcx
		"50",                   // push rax
		"505b",                 // push rax; pop rbx
		"31c9f7f1",             // xor ecx,ecx; div ecx
		"488b413f",             // line-splitting load
		"488b81000000ed",       // non-canonical address
		"4881c300100000488b03", // page-budget blowout
		"488b442408",           // mov rax,[rsp+8]
		"488b04d1",             // mov rax,[rcx+rdx*8]
		"0f280f01c8",           // movaps xmm1,[rcx]; add rax,rcx
		"4801d8",               // add rax,rbx
		"480fafc0",             // imul rax,rax
		"c5fdfec0",             // vpaddd ymm0,ymm0,ymm0
		"f3480f2ac8",           // cvtsi2ss
	}
	for _, hexStr := range blocks {
		rep := a.AnalyzeHex(hexStr)
		raw, err := x86.DecodeBlock(mustHex(t, hexStr))
		if err != nil {
			t.Fatalf("%s: %v", hexStr, err)
		}
		res := p.Profile(&x86.Block{Insts: raw})
		if !rep.Agrees(res.Status) {
			t.Errorf("%s: static %v (exact=%v) vs dynamic %v\n  diags: %v",
				hexStr, rep.Predicted, rep.Exact, res.Status, rep.Diags)
		}
	}
}

// TestAgreementCorpus runs the analyzer against the profiler over a
// generated corpus slice and requires zero unexplained disagreements.
func TestAgreementCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	cpu, _ := uarch.ByName("haswell")
	opts := profiler.DefaultOptions()
	a := New(cpu, opts)
	p := profiler.New(cpu, opts)
	recs := corpus.GenerateAll(0.02, 1)
	if len(recs) == 0 {
		t.Fatal("empty corpus")
	}
	prescreened := 0
	for _, rec := range recs {
		rep := a.Analyze(rec.Block)
		if rep.Rejected() {
			prescreened++
		}
		res := p.Profile(rec.Block)
		if !rep.Agrees(res.Status) {
			hexStr, _ := rec.Block.Hex()
			t.Errorf("%s/%s: static %v (exact=%v) vs dynamic %v\n  diags: %v",
				rec.App, hexStr, rep.Predicted, rep.Exact, res.Status, rep.Diags)
		}
	}
	t.Logf("%d blocks, %d statically rejected", len(recs), prescreened)
}

func TestDiagRendering(t *testing.T) {
	if got := CodeBadAddress.String(); got != "BL007" {
		t.Fatalf("code string %q", got)
	}
	d := Diag{Code: CodeDivideError, Inst: 1, Offset: 2, Msg: "boom"}
	if s := d.String(); !strings.Contains(s, "BL008") || !strings.Contains(s, "inst 1") {
		t.Fatalf("diag string %q", s)
	}
	if CodeLineSplit.Severity() != SevReject || CodeUnmodeled.Severity() != SevInfo {
		t.Fatal("severity map wrong")
	}
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	var out []byte
	for i := 0; i+1 < len(s); i += 2 {
		hi := hexNib(s[i])
		lo := hexNib(s[i+1])
		if hi < 0 || lo < 0 {
			t.Fatalf("bad hex %q", s)
		}
		out = append(out, byte(hi<<4|lo))
	}
	return out
}

func hexNib(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	}
	return -1
}

// TestBoundsAttached checks that every analyzable report carries the
// static cycle-bound analysis and that BL015 renders/classifies correctly.
func TestBoundsAttached(t *testing.T) {
	rep := defaultAnalyzer(t).AnalyzeHex("480fafc0") // imul rax,rax
	if rep.Bounds == nil {
		t.Fatal("no bounds on an analyzable block")
	}
	if rep.Bounds.Lower <= 0 || rep.Bounds.Lower > rep.Bounds.Upper {
		t.Fatalf("bad bounds %+v", rep.Bounds)
	}
	if rep.Bounds.Vacuous || hasCode(rep, CodeVacuousBounds) {
		t.Fatalf("table-backed block marked vacuous: %v", rep.Diags)
	}

	// Undecodable input carries no bounds.
	if rep := defaultAnalyzer(t).AnalyzeHex("zz"); rep.Bounds != nil {
		t.Fatal("bounds on undecodable input")
	}

	if CodeVacuousBounds.String() != "BL015" {
		t.Fatalf("BL015 renders as %s", CodeVacuousBounds)
	}
	if CodeVacuousBounds.Severity() != SevInfo {
		t.Fatalf("BL015 severity %v, want info", CodeVacuousBounds.Severity())
	}
}
