package backend

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"bhive/internal/pipeline"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// TraceVersion tags the trace file format; a bump invalidates old traces
// wholesale (they fail to open rather than replaying stale semantics).
const TraceVersion = 1

// A measurement trace is a JSONL file:
//
//	line 1:  {"Version":1,"Backend":"sim","Fingerprint":"sim|{...}"}
//	line 2+: {"Key":"5f0c…","CPU":"haswell","Status":0,"Tp":1.25,"Counters":{…}}
//
// Entries are content-addressed: Key = sha256(cpu name | block machine
// code), so a trace is a pure function of what was measured — re-running
// the same corpus in any order or sharding produces the same entry set,
// and replay needs no positional bookkeeping. The header records which
// backend produced the trace; replay adopts that identity (name and
// fingerprint), which is what makes a replayed report byte-identical to
// the originating backend's.
type traceHeader struct {
	Version     int
	Backend     string
	Fingerprint string
}

type traceEntry struct {
	Key      string
	CPU      string
	Status   int
	Tp       float64
	Counters pipeline.Counters
}

// traceKey content-addresses one (cpu, block) measurement.
func traceKey(cpuName string, b *x86.Block) (string, error) {
	hexStr, err := b.Hex()
	if err != nil {
		return "", fmt.Errorf("backend: trace key: %w", err)
	}
	sum := sha256.Sum256([]byte(cpuName + "|" + hexStr))
	return hex.EncodeToString(sum[:16]), nil
}

// Recorder wraps another backend and appends every measurement it
// produces to a trace file, deduplicated by content address. It is
// transparent: Name and Fingerprint are the inner backend's, so a
// recording run reports exactly what the inner backend would alone.
//
// The trace is written atomically: appends go to a hidden temp file in
// the destination directory, and only a clean Close publishes it (fsync,
// rename over the final path, parent-directory fsync). A crash — or a
// recording that ends in error — leaves any previous trace at the final
// path untouched instead of a torn file that OpenTrace rejects wholesale.
type Recorder struct {
	inner Backend
	path  string // final trace path, created by Close

	mu   sync.Mutex
	f    *os.File // temp file until Close renames it
	w    *bufio.Writer
	seen map[string]bool
	err  error // first write error, surfaced by Close
}

// NewRecorder arranges for a trace at path and returns a backend that
// measures through inner while recording. Nothing exists at path until
// Close publishes the complete trace.
func NewRecorder(inner Backend, path string) (*Recorder, error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backend: trace: %w", err)
	}
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("backend: trace: %w", err)
	}
	r := &Recorder{inner: inner, path: path, f: f, w: bufio.NewWriter(f), seen: make(map[string]bool)}
	hdr, err := json.Marshal(traceHeader{
		Version: TraceVersion, Backend: inner.Name(), Fingerprint: inner.Fingerprint(),
	})
	if err == nil {
		_, err = r.w.Write(append(hdr, '\n'))
	}
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("backend: trace: %w", err)
	}
	return r, nil
}

func (r *Recorder) Name() string        { return r.inner.Name() }
func (r *Recorder) Fingerprint() string { return r.inner.Fingerprint() }

func (r *Recorder) Measure(b *x86.Block, cpu *uarch.CPU) Measurement {
	m := r.inner.Measure(b, cpu)
	key, err := traceKey(cpu.Name, b)
	if err != nil {
		r.noteErr(err)
		return m
	}
	raw, err := json.Marshal(traceEntry{
		Key: key, CPU: cpu.Name, Status: int(m.Status), Tp: m.Throughput, Counters: m.Counters,
	})
	if err != nil {
		r.noteErr(err)
		return m
	}
	r.mu.Lock()
	if !r.seen[key] && r.err == nil && r.w != nil {
		r.seen[key] = true
		if _, werr := r.w.Write(append(raw, '\n')); werr != nil {
			r.err = werr
		}
	}
	r.mu.Unlock()
	return m
}

func (r *Recorder) noteErr(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// Close flushes and syncs the trace, publishes it under the final path
// (rename + parent-directory fsync), closes the inner backend, and
// surfaces the first error from anywhere in the recording. On error the
// temp file is removed and the final path is left as it was — a trace
// either appears complete or not at all.
func (r *Recorder) Close() error {
	r.mu.Lock()
	err := r.err
	if r.w != nil {
		if ferr := r.w.Flush(); err == nil {
			err = ferr
		}
		r.w = nil
	}
	if r.f != nil {
		tmp := r.f.Name()
		if serr := r.f.Sync(); err == nil {
			err = serr
		}
		if cerr := r.f.Close(); err == nil {
			err = cerr
		}
		r.f = nil
		if err == nil {
			err = os.Rename(tmp, r.path)
		}
		if err == nil {
			err = syncDir(filepath.Dir(r.path))
		}
		if err != nil {
			os.Remove(tmp)
		}
	}
	r.mu.Unlock()
	if ierr := r.inner.Close(); err == nil {
		err = ierr
	}
	if err != nil {
		return fmt.Errorf("backend: trace: %w", err)
	}
	return nil
}

// syncDir makes the just-renamed directory entry durable: rename alone
// only updates the entry in memory, so a crash shortly after Close could
// otherwise roll the published trace back out of the directory.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("syncing %s: %w", dir, serr)
	}
	return cerr
}

// RecordedBackend replays a measurement trace deterministically: every
// Measure is a content-addressed lookup, no simulation runs. It adopts
// the identity (name, fingerprint) of the backend that produced the
// trace, so a replayed report is byte-identical to the original run's.
// A block the trace never measured replays as StatusCrashed with a
// descriptive error — hermetic by construction, never silently wrong.
type RecordedBackend struct {
	name        string
	fingerprint string
	path        string
	entries     map[string]traceEntry
}

// OpenTrace loads a trace written by a Recorder. The whole file is
// validated eagerly: version mismatches, corrupt lines, and duplicate
// keys with conflicting payloads all fail here rather than mid-run.
func OpenTrace(path string) (*RecordedBackend, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("backend: trace: %w", err)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("backend: trace: %s: missing header", path)
	}
	var hdr traceHeader
	if err := json.Unmarshal(raw[:nl], &hdr); err != nil {
		return nil, fmt.Errorf("backend: trace: %s: bad header: %w", path, err)
	}
	if hdr.Version != TraceVersion {
		return nil, fmt.Errorf("backend: trace: %s: version %d, want %d", path, hdr.Version, TraceVersion)
	}
	if hdr.Backend == "" {
		return nil, fmt.Errorf("backend: trace: %s: header names no backend", path)
	}
	rb := &RecordedBackend{
		name:        hdr.Backend,
		fingerprint: hdr.Fingerprint,
		path:        path,
		entries:     make(map[string]traceEntry),
	}
	line := 1
	rest := raw[nl+1:]
	for len(rest) > 0 {
		line++
		nl = bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("backend: trace: %s:%d: truncated entry", path, line)
		}
		var e traceEntry
		if err := json.Unmarshal(rest[:nl], &e); err != nil {
			return nil, fmt.Errorf("backend: trace: %s:%d: %w", path, line, err)
		}
		// Full-payload comparison: traceEntry is comparable, so any field
		// diverging — Counters included, which Status+Tp checks would let
		// slip through to a silent last-write-wins — is a conflict.
		if prev, dup := rb.entries[e.Key]; dup && prev != e {
			return nil, fmt.Errorf("backend: trace: %s:%d: key %s recorded twice with conflicting payloads", path, line, e.Key)
		}
		rb.entries[e.Key] = e
		rest = rest[nl+1:]
	}
	return rb, nil
}

func (rb *RecordedBackend) Name() string        { return rb.name }
func (rb *RecordedBackend) Fingerprint() string { return rb.fingerprint }

// Len reports how many distinct (cpu, block) measurements the trace holds.
func (rb *RecordedBackend) Len() int { return len(rb.entries) }

func (rb *RecordedBackend) Measure(b *x86.Block, cpu *uarch.CPU) Measurement {
	key, err := traceKey(cpu.Name, b)
	if err != nil {
		return Measurement{Status: profiler.StatusCrashed, Err: err}
	}
	e, ok := rb.entries[key]
	if !ok {
		return Measurement{
			Status: profiler.StatusCrashed,
			Err:    fmt.Errorf("backend: trace %s has no measurement for this block on %s", rb.path, cpu.Name),
		}
	}
	return Measurement{Status: profiler.Status(e.Status), Throughput: e.Tp, Counters: e.Counters}
}

func (rb *RecordedBackend) Close() error { return nil }
