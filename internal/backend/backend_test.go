package backend

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func block(t *testing.T, text string) *x86.Block {
	t.Helper()
	b, err := x86.ParseBlock(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return b
}

func TestCheckSpec(t *testing.T) {
	for _, ok := range []string{"sim", "perturbed", "recorded:/tmp/x.trace"} {
		if err := CheckSpec(ok); err != nil {
			t.Errorf("CheckSpec(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "hardware", "recorded", "recorded:", "SIM"} {
		if err := CheckSpec(bad); err == nil {
			t.Errorf("CheckSpec(%q) = nil, want error", bad)
		}
	}
}

func TestParseList(t *testing.T) {
	bes, err := ParseList("sim, perturbed", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bes) != 2 || bes[0].Name() != "sim" || bes[1].Name() != "perturbed" {
		t.Fatalf("got %d backends", len(bes))
	}
	if _, err := ParseList("sim,sim", Options{}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate spec: err = %v", err)
	}
	if _, err := ParseList("", Options{}); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := ParseList("recorded:/no/such/file", Options{}); err == nil {
		t.Fatal("missing trace accepted")
	}
}

// TestSimVsPerturbed: the perturbed parameterization must produce a
// different throughput on a latency-bound block but agree on the status
// protocol — it is a recalibration, not a different acceptance policy.
func TestSimVsPerturbed(t *testing.T) {
	b := block(t, "addss xmm1, xmm0\naddss xmm2, xmm1\naddss xmm3, xmm2")
	cpu := uarch.Haswell()
	sim := NewSim(Options{})
	per := NewPerturbedSim(Options{})
	ms := sim.Measure(b, cpu)
	mp := per.Measure(b, cpu)
	if ms.Status != profiler.StatusOK || mp.Status != profiler.StatusOK {
		t.Fatalf("statuses: sim=%v perturbed=%v", ms.Status, mp.Status)
	}
	if mp.Throughput <= ms.Throughput {
		t.Fatalf("perturbed throughput %v not slower than sim %v (fp-add latency chain)",
			mp.Throughput, ms.Throughput)
	}
	if sim.Fingerprint() == per.Fingerprint() {
		t.Fatal("sim and perturbed share a fingerprint")
	}
}

func TestRecordReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sim.trace")
	blocks := []*x86.Block{
		block(t, "add rax, rbx"),
		block(t, "imul rax, rbx\nadd rcx, rax"),
		block(t, "addss xmm1, xmm0"),
	}
	cpu := uarch.Skylake()

	rec, err := NewRecorder(NewSim(Options{}), path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name() != "sim" {
		t.Fatalf("recorder name %q, want inner backend's", rec.Name())
	}
	want := make([]Measurement, len(blocks))
	for i, b := range blocks {
		want[i] = rec.Measure(b, cpu)
		rec.Measure(b, cpu) // re-measuring must dedup, not duplicate entries
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	rb, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Name() != "sim" {
		t.Fatalf("replay name %q, want %q (adopted from header)", rb.Name(), "sim")
	}
	if rb.Fingerprint() != NewSim(Options{}).Fingerprint() {
		t.Fatal("replay did not adopt the recorded fingerprint")
	}
	if rb.Len() != len(blocks) {
		t.Fatalf("trace holds %d entries, want %d (dedup)", rb.Len(), len(blocks))
	}
	for i, b := range blocks {
		got := rb.Measure(b, cpu)
		if got.Status != want[i].Status || got.Throughput != want[i].Throughput {
			t.Errorf("block %d: replay (%v, %v) != recorded (%v, %v)",
				i, got.Status, got.Throughput, want[i].Status, want[i].Throughput)
		}
		if got.Counters.Cycles != want[i].Counters.Cycles {
			t.Errorf("block %d: replay cycles %d != recorded %d",
				i, got.Counters.Cycles, want[i].Counters.Cycles)
		}
	}

	// A block the trace never saw replays as a descriptive crash, and a
	// different µarch misses too (the key is content-addressed per CPU).
	miss := rb.Measure(block(t, "sub rax, rbx"), cpu)
	if miss.Status != profiler.StatusCrashed || miss.Err == nil {
		t.Fatalf("trace miss: (%v, %v), want crashed with error", miss.Status, miss.Err)
	}
	if m := rb.Measure(blocks[0], uarch.Haswell()); m.Status != profiler.StatusCrashed {
		t.Fatalf("cross-µarch lookup: %v, want crashed (never recorded)", m.Status)
	}
}

func TestOpenTraceErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, content, wantErr string
	}{
		{"nohdr", "", "missing header"},
		{"badhdr", "not json\n", "bad header"},
		{"badver", `{"Version":99,"Backend":"sim"}` + "\n", "version 99"},
		{"noname", `{"Version":1,"Backend":""}` + "\n", "names no backend"},
		{"torn", `{"Version":1,"Backend":"sim"}` + "\n" + `{"Key":"ab"`, "truncated"},
		{"badline", `{"Version":1,"Backend":"sim"}` + "\n" + "garbage\n", "invalid character"},
		{"conflict", `{"Version":1,"Backend":"sim"}` + "\n" +
			`{"Key":"k1","CPU":"haswell","Status":0,"Tp":1}` + "\n" +
			`{"Key":"k1","CPU":"haswell","Status":0,"Tp":2}` + "\n", "conflicting"},
		// Same Status and Tp, different Counters: the payload comparison
		// must cover every field, or the second entry silently wins.
		{"conflict-counters", `{"Version":1,"Backend":"sim"}` + "\n" +
			`{"Key":"k1","CPU":"haswell","Status":0,"Tp":1,"Counters":{"Cycles":10}}` + "\n" +
			`{"Key":"k1","CPU":"haswell","Status":0,"Tp":1,"Counters":{"Cycles":11}}` + "\n", "conflicting"},
	}
	for _, c := range cases {
		_, err := OpenTrace(write(c.name, c.content))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
	if _, err := OpenTrace(filepath.Join(dir, "absent")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRecorderCrashMidRecord: a recording that never reaches Close must
// not disturb the final trace path. Before the atomic-write fix the
// Recorder created (truncating!) the final file up front, so a crash
// mid-record left a torn trace — and destroyed any previous good one.
func TestRecorderCrashMidRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sim.trace")
	cpu := uarch.Skylake()

	// A complete, good trace from an earlier run.
	rec, err := NewRecorder(NewSim(Options{}), path)
	if err != nil {
		t.Fatal(err)
	}
	rec.Measure(block(t, "add rax, rbx"), cpu)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A second recording "crashes" mid-record: measurements happen, Close
	// never does. The final path must still hold the old trace bytes.
	crashed, err := NewRecorder(NewSim(Options{}), path)
	if err != nil {
		t.Fatal(err)
	}
	crashed.Measure(block(t, "imul rax, rbx"), cpu)
	if got, err := os.ReadFile(path); err != nil || !bytes.Equal(got, good) {
		t.Fatalf("mid-record, final path changed: err=%v len=%d want %d", err, len(got), len(good))
	}
	if rb, err := OpenTrace(path); err != nil || rb.Len() != 1 {
		t.Fatalf("old trace unreadable mid-record: %v", err)
	}

	// The unpublished temp file is in the directory; a fresh recording to
	// the same path must not trip over it and must publish atomically.
	rec2, err := NewRecorder(NewSim(Options{}), path)
	if err != nil {
		t.Fatal(err)
	}
	rec2.Measure(block(t, "add rax, rbx"), cpu)
	rec2.Measure(block(t, "sub rcx, rdx"), cpu)
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}
	rb, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Len() != 2 {
		t.Fatalf("republished trace holds %d entries, want 2", rb.Len())
	}
}

// TestPerturbedSharesCacheSafely: both parameterizations can share one
// profile cache because the perturbed CPUs carry distinct names — a
// cached sim profile must never satisfy a perturbed lookup.
func TestPerturbedSharesCacheSafely(t *testing.T) {
	b := block(t, "addss xmm1, xmm0\naddss xmm2, xmm1")
	cpu := uarch.Haswell()
	simNoCache := NewSim(Options{}).Measure(b, cpu)
	perNoCache := NewPerturbedSim(Options{}).Measure(b, cpu)

	met := new(profiler.Metrics)
	opts := Options{Metrics: met}
	sim := NewSim(opts)
	per := NewPerturbedSim(opts)
	if got := sim.Measure(b, cpu); got.Throughput != simNoCache.Throughput {
		t.Fatalf("sim with shared metrics: %v, want %v", got.Throughput, simNoCache.Throughput)
	}
	if got := per.Measure(b, cpu); got.Throughput != perNoCache.Throughput {
		t.Fatalf("perturbed under shared infra: %v, want %v", got.Throughput, perNoCache.Throughput)
	}
}
