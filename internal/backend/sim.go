package backend

import (
	"sync"

	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// sim is the shared simulator-backed implementation: a lazily built,
// mutex-guarded pool of one profiler.Profiler per (possibly remapped)
// microarchitecture. profiler.Profiler is itself safe for concurrent
// use, so Measure only locks to find-or-create the per-CPU entry.
type sim struct {
	name  string
	opts  Options
	remap func(*uarch.CPU) *uarch.CPU // nil = identity

	mu    sync.Mutex
	profs map[string]*profiler.Profiler // keyed by the *original* CPU name
}

// SimBackend measures with the cycle-level simulator under its stock
// parameter files — the repo's default ground truth, wrapping
// profiler.Profiler unchanged.
type SimBackend struct{ sim }

// NewSim builds the default simulator backend.
func NewSim(opts Options) *SimBackend {
	return &SimBackend{sim{name: "sim", opts: opts}}
}

// PerturbedSimBackend measures with the same simulator under a second
// parameterization of every microarchitecture (uarch.CPU.Perturbed):
// scaled latencies and a thinned port map, standing in for a
// differently-calibrated machine.
type PerturbedSimBackend struct{ sim }

// NewPerturbedSim builds the perturbed-parameterization backend.
func NewPerturbedSim(opts Options) *PerturbedSimBackend {
	return &PerturbedSimBackend{sim{
		name:  "perturbed",
		opts:  opts,
		remap: func(c *uarch.CPU) *uarch.CPU { return c.Perturbed() },
	}}
}

func (s *sim) Name() string { return s.name }

// Fingerprint is the backend name plus the profiler options it runs
// under; the perturbed CPU rename is implied by the name.
func (s *sim) Fingerprint() string {
	return s.name + "|" + s.opts.profilerOptions().Fingerprint()
}

func (s *sim) profilerFor(cpu *uarch.CPU) *profiler.Profiler {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.profs == nil {
		s.profs = make(map[string]*profiler.Profiler)
	}
	p := s.profs[cpu.Name]
	if p == nil {
		target := cpu
		if s.remap != nil {
			target = s.remap(cpu)
		}
		p = profiler.New(target, s.opts.profilerOptions())
		p.Cache = s.opts.Cache
		p.Metrics = s.opts.Metrics
		s.profs[cpu.Name] = p
	}
	return p
}

func (s *sim) Measure(b *x86.Block, cpu *uarch.CPU) Measurement {
	r := s.profilerFor(cpu).Profile(b)
	return Measurement{
		Status:     r.Status,
		Throughput: r.Throughput,
		Counters:   r.Counters,
		Err:        r.Err,
	}
}

func (s *sim) Close() error { return nil }
