package backend

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzOpenTrace throws arbitrary bytes at the trace loader. OpenTrace is
// the one parser in the measurement path that reads files a crash may
// have torn or an operator may have hand-edited, so it must reject —
// never panic on, never half-load — anything that is not a complete
// well-formed trace.
//
// Seeds: the checked-in counter-backend fixture (a real recorded trace)
// and targeted corruptions of it — corrupt headers, truncated tails,
// duplicate keys with both agreeing and conflicting payloads.
func FuzzOpenTrace(f *testing.F) {
	fixture, err := os.ReadFile(filepath.Join("testdata", "counter_haswell.trace"))
	if err != nil {
		f.Fatalf("fixture trace: %v", err)
	}
	f.Add(fixture)

	lines := bytes.SplitAfter(fixture, []byte("\n"))
	if len(lines) < 3 {
		f.Fatalf("fixture trace has %d lines, want a header and entries", len(lines))
	}
	header, first := lines[0], lines[1]

	// Header corruptions.
	f.Add([]byte(nil))
	f.Add([]byte("\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte(`{"Version":99,"Backend":"sim","Fingerprint":"x"}` + "\n"))
	f.Add([]byte(`{"Version":1,"Backend":"","Fingerprint":"x"}` + "\n"))
	f.Add(bytes.TrimSuffix(header, []byte("\n"))) // header without newline

	// Truncated tails: the fixture cut mid-entry at various depths.
	for _, cut := range []int{1, len(header) + 1, len(fixture) / 2, len(fixture) - 1} {
		f.Add(fixture[:cut])
	}

	// Duplicate keys: an exact duplicate (legal) and a conflicting one.
	f.Add(append(append([]byte{}, fixture...), first...))
	conflict := bytes.Replace(first, []byte(`"Status":0`), []byte(`"Status":3`), 1)
	f.Add(append(append([]byte{}, fixture...), conflict...))

	// Entry-level damage.
	f.Add(append(append([]byte{}, header...), []byte("garbage entry\n")...))
	f.Add(append(append([]byte{}, header...), []byte(`{"Key":"","CPU":"haswell"}`+"\n")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.trace")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rb, err := OpenTrace(path)
		if err != nil {
			if rb != nil {
				t.Fatal("OpenTrace returned both a backend and an error")
			}
			return
		}
		// A trace that loads must be internally consistent: a non-empty
		// backend identity and as many entries as distinct keys — and it
		// must load identically a second time (no hidden state).
		if rb.Name() == "" {
			t.Fatal("loaded trace has empty backend name")
		}
		again, err := OpenTrace(path)
		if err != nil || again.Len() != rb.Len() ||
			again.Name() != rb.Name() || again.Fingerprint() != rb.Fingerprint() {
			t.Fatalf("reload diverged: %v (%d vs %d entries)", err, rb.Len(), again.Len())
		}
	})
}

// TestOpenTraceFixture pins the checked-in counter fixture itself: it
// must load, carry the counter backend identity, and hold one entry per
// corpus block — the invariants the xval fixture tests build on.
func TestOpenTraceFixture(t *testing.T) {
	rb, err := OpenTrace(filepath.Join("testdata", "counter_haswell.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if rb.Name() != "counter" {
		t.Errorf("fixture backend = %q, want counter", rb.Name())
	}
	if !strings.Contains(rb.Fingerprint(), "stub|seed1") {
		t.Errorf("fixture fingerprint %q does not identify the stub source", rb.Fingerprint())
	}
	if rb.Len() == 0 {
		t.Error("fixture trace is empty")
	}
}
