// Package backend abstracts "measure one basic block on one
// microarchitecture" behind a pluggable interface, so the harness can
// cross-validate ground truths against each other the way the paper
// cross-validates models against one hardware truth (Tables V/VI).
//
// Three implementations ship:
//
//   - SimBackend wraps the cycle-level simulator (internal/profiler)
//     unchanged — the repo's default ground truth.
//   - PerturbedSimBackend runs the same simulator under a second
//     parameterization of each microarchitecture (uarch.CPU.Perturbed),
//     standing in for a differently-calibrated machine.
//   - RecordedBackend records every measurement another backend produces
//     to a content-addressed JSONL trace and replays it deterministically
//     — a hermetic fixture source for fast tests.
//
// Backends are selected by spec strings ("sim", "perturbed",
// "recorded:<path>") parsed by Parse/ParseList, the grammar shared by
// bhive-eval's -backend flag and bhive-serve's request field. Further
// backend families register spec schemes via RegisterScheme — the
// hardware-counter backend (internal/counter) adds "counter[:<source>]"
// when linked into a binary.
package backend

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"bhive/internal/pipeline"
	"bhive/internal/profcache"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Measurement is one block's outcome on one microarchitecture under one
// backend — the profiler.Result fields every ground truth must supply.
type Measurement struct {
	Status     profiler.Status
	Throughput float64 // cycles per iteration at steady state (0 unless StatusOK)
	Counters   pipeline.Counters
	Err        error // the fault for StatusCrashed/StatusUnsupported (not serialized)
}

// Backend measures basic blocks on microarchitectures. Implementations
// must be safe for concurrent Measure calls — the harness drives one
// backend from its whole worker pool.
type Backend interface {
	// Name is the short stable identifier used in reports, checkpoint
	// shard keys and trace headers ("sim", "perturbed", ...).
	Name() string
	// Fingerprint captures the measurement semantics (options, CPU
	// parameterization, trace identity); it feeds the run fingerprint so
	// checkpoints written under one backend set never resume another.
	Fingerprint() string
	// Measure profiles one block on one microarchitecture.
	Measure(b *x86.Block, cpu *uarch.CPU) Measurement
	// Close flushes any backing store (traces); measuring after Close is
	// undefined.
	Close() error
}

// Options carries the shared infrastructure backends plug into.
type Options struct {
	// Profiler parameterizes simulator-backed backends; zero value means
	// profiler.DefaultOptions().
	Profiler *profiler.Options
	// Cache, when non-nil, is consulted by simulator-backed backends
	// (keyed by CPU name, so the perturbed parameterization — which
	// renames its CPUs — shares the file without colliding).
	Cache *profcache.Cache
	// Metrics, when non-nil, receives every profiling outcome.
	Metrics *profiler.Metrics
}

func (o Options) profilerOptions() profiler.Options {
	if o.Profiler != nil {
		return *o.Profiler
	}
	return profiler.DefaultOptions()
}

// Scheme extends the spec grammar with an externally implemented backend
// family (e.g. the hardware-counter backend in internal/counter, which
// cannot live here without an import cycle). Check validates a spec
// argument without side effects; Open builds the backend.
type Scheme struct {
	// Check validates the spec argument (the part after "scheme:", ""
	// when the spec is the bare scheme name) without touching the
	// filesystem or any hardware.
	Check func(arg string) error
	// Open builds the backend for the argument.
	Open func(arg string, opts Options) (Backend, error)
}

var (
	schemeMu sync.RWMutex
	schemes  = map[string]Scheme{}
)

// RegisterScheme adds a spec scheme to the grammar shared by CheckSpec
// and Parse. It is meant to be called from package init functions
// (internal/counter registers "counter"); registering a built-in or
// already-registered name panics — that is a programming error, not a
// runtime condition.
func RegisterScheme(name string, s Scheme) {
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if name == "sim" || name == "perturbed" || name == "recorded" {
		panic("backend: RegisterScheme: " + name + " is built in")
	}
	if _, dup := schemes[name]; dup {
		panic("backend: RegisterScheme: duplicate scheme " + name)
	}
	if s.Check == nil || s.Open == nil {
		panic("backend: RegisterScheme: " + name + ": Check and Open are both required")
	}
	schemes[name] = s
}

// lookupScheme splits a spec into its scheme name and argument and finds
// the registered handler, if any.
func lookupScheme(spec string) (s Scheme, arg string, ok bool) {
	name, arg, _ := strings.Cut(spec, ":")
	schemeMu.RLock()
	s, ok = schemes[name]
	schemeMu.RUnlock()
	return s, arg, ok
}

// SpecGrammar names the accepted spec forms for error messages,
// including every registered scheme.
func SpecGrammar() string {
	forms := []string{"sim", "perturbed", "recorded:<path>"}
	schemeMu.RLock()
	for name := range schemes {
		forms = append(forms, name+"[:<arg>]")
	}
	schemeMu.RUnlock()
	sort.Strings(forms[3:])
	return strings.Join(forms, ", ")
}

// CheckSpec validates a backend spec string without touching the
// filesystem — the server uses it to reject bad requests before a job is
// created. The grammar is: "sim" | "perturbed" | "recorded:<path>" plus
// any scheme added via RegisterScheme ("counter[:<source>]" when
// internal/counter is linked in).
func CheckSpec(spec string) error {
	switch {
	case spec == "sim", spec == "perturbed":
		return nil
	case strings.HasPrefix(spec, "recorded:"):
		if strings.TrimPrefix(spec, "recorded:") == "" {
			return fmt.Errorf("backend: %q: recorded needs a trace path (recorded:<path>)", spec)
		}
		return nil
	case spec == "recorded":
		return fmt.Errorf("backend: %q: recorded needs a trace path (recorded:<path>)", spec)
	default:
		if s, arg, ok := lookupScheme(spec); ok {
			return s.Check(arg)
		}
		return fmt.Errorf("backend: unknown spec %q (want %s)", spec, SpecGrammar())
	}
}

// Parse builds one backend from its spec string. recorded:<path> opens
// the trace eagerly, so a missing or corrupt trace fails here, not
// mid-run.
func Parse(spec string, opts Options) (Backend, error) {
	if err := CheckSpec(spec); err != nil {
		return nil, err
	}
	switch {
	case spec == "sim":
		return NewSim(opts), nil
	case spec == "perturbed":
		return NewPerturbedSim(opts), nil
	case strings.HasPrefix(spec, "recorded:"):
		return OpenTrace(strings.TrimPrefix(spec, "recorded:"))
	default:
		s, arg, _ := lookupScheme(spec)
		return s.Open(arg, opts)
	}
}

// ParseList builds backends from a comma-separated spec list, rejecting
// duplicates by name (two backends with one name would collide in the
// checkpoint shard keyspace and produce a meaningless self-comparison).
func ParseList(specs string, opts Options) ([]Backend, error) {
	var out []Backend
	seen := map[string]bool{}
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		b, err := Parse(spec, opts)
		if err != nil {
			for _, prev := range out {
				prev.Close()
			}
			return nil, err
		}
		if seen[b.Name()] {
			b.Close()
			for _, prev := range out {
				prev.Close()
			}
			return nil, fmt.Errorf("backend: duplicate backend name %q in %q", b.Name(), specs)
		}
		seen[b.Name()] = true
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("backend: empty spec list %q", specs)
	}
	return out, nil
}
