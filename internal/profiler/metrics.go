package profiler

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// NumStatus is the number of distinct profiling statuses; ByStatus arrays
// are indexed by Status.
const NumStatus = len(statusNames)

// Metrics aggregates Profile outcomes across the goroutines sharing it:
// how many blocks were served from the persistent cache vs. actually
// measured, and the per-status outcome histogram. It is the first
// observability layer of the sharded evaluation pipeline — per-shard
// progress lines are derived from Snapshot deltas. All counters are
// atomic; a nil *Metrics is a valid no-op sink.
type Metrics struct {
	cacheHits   atomic.Uint64
	profiled    atomic.Uint64
	prescreened atomic.Uint64
	crossMism   atomic.Uint64
	status      [NumStatus]atomic.Uint64

	// planned is the number of block outcomes registered as upcoming work
	// (AddPlanned); startNanos is the wall time of the first recorded
	// outcome (0 = none yet). Together they drive Throughput's ETA.
	// measStartNanos is the wall time of the first *measured* outcome —
	// cache hits and prescreens are near-instant, so the ETA for work that
	// still has to be measured must come from the measured rate alone, not
	// the hit-inflated overall rate.
	planned        atomic.Uint64
	startNanos     atomic.Int64
	measStartNanos atomic.Int64
}

// timeNow is swapped by tests to drive the rate clocks deterministically.
var timeNow = time.Now

// markStart stamps the first recorded outcome's wall time exactly once.
func (m *Metrics) markStart() {
	if m.startNanos.Load() == 0 {
		m.startNanos.CompareAndSwap(0, timeNow().UnixNano())
	}
}

// markMeasStart stamps the first measured outcome's wall time exactly once.
func (m *Metrics) markMeasStart() {
	if m.measStartNanos.Load() == 0 {
		m.measStartNanos.CompareAndSwap(0, timeNow().UnixNano())
	}
}

// AddPlanned registers n upcoming block outcomes, letting Throughput
// estimate time remaining. Callers register each pass's non-resumed work
// just before computing it, so the ETA covers the work known so far (later
// passes extend it as they start). Safe on a nil receiver.
func (m *Metrics) AddPlanned(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.planned.Add(uint64(n))
}

// Rate is a Throughput report: the overall processing rate (every
// outcome, cache hits and prescreens included), the measured-only rate
// (zero until a block is actually measured), and the ETA for the planned
// work remaining.
type Rate struct {
	// BlocksPerSec is the overall rate since the first recorded outcome.
	BlocksPerSec float64
	// MeasuredPerSec is the rate of measured (cache-miss) outcomes since
	// the first one; 0 while everything has come from the cache.
	MeasuredPerSec float64
	// Eta estimates the time to finish the registered remaining work
	// (0 when none remains).
	Eta time.Duration
}

// Throughput reports the processing rates since the first recorded
// outcome and, from the planned-work registrations, the estimated time to
// finish the remainder. ok is false until an outcome has landed (and on a
// nil receiver).
//
// The ETA is derived from the measured-only rate once any block has been
// measured: cache hits and prescreens complete in microseconds, so a
// warm-cache resume that replays thousands of hits would otherwise report
// a wildly optimistic ETA for the cold blocks still waiting on the
// measurement protocol. Only when the run has measured nothing (fully
// warm so far) does the overall rate drive the ETA — then the hits *are*
// the workload.
func (m *Metrics) Throughput() (r Rate, ok bool) {
	if m == nil {
		return Rate{}, false
	}
	start := m.startNanos.Load()
	if start == 0 {
		return Rate{}, false
	}
	snap := m.Snapshot()
	done := snap.Total()
	elapsed := timeNow().Sub(time.Unix(0, start))
	if done == 0 || elapsed <= 0 {
		return Rate{}, false
	}
	r.BlocksPerSec = float64(done) / elapsed.Seconds()
	if ms := m.measStartNanos.Load(); ms != 0 && snap.Profiled > 0 {
		if me := timeNow().Sub(time.Unix(0, ms)); me > 0 {
			r.MeasuredPerSec = float64(snap.Profiled) / me.Seconds()
		}
	}
	if planned := m.planned.Load(); planned > done {
		etaRate := r.BlocksPerSec
		if r.MeasuredPerSec > 0 {
			etaRate = r.MeasuredPerSec
		}
		r.Eta = time.Duration(float64(planned-done) / etaRate * float64(time.Second))
	}
	return r, true
}

// record accounts one Profile call. hit reports whether the result came
// from the persistent cache (a miss means the block was measured).
func (m *Metrics) record(s Status, hit bool) {
	if m == nil {
		return
	}
	m.markStart()
	if hit {
		m.cacheHits.Add(1)
	} else {
		m.markMeasStart()
		m.profiled.Add(1)
	}
	if int(s) < NumStatus {
		m.status[s].Add(1)
	}
}

// RecordPrescreened accounts one block that static analysis rejected
// before profiling: the predicted status lands in the histogram like a
// dynamic outcome, and the Prescreened counter records that no
// measurement ran for it.
func (m *Metrics) RecordPrescreened(s Status) {
	if m == nil {
		return
	}
	m.markStart()
	m.prescreened.Add(1)
	if int(s) < NumStatus {
		m.status[s].Add(1)
	}
}

// RecordCrosscheckMismatch accounts one block whose dynamic status
// disagreed with the static prediction outside the whitelisted cases.
func (m *Metrics) RecordCrosscheckMismatch() {
	if m == nil {
		return
	}
	m.crossMism.Add(1)
}

// Snapshot is a point-in-time copy of the counters, suitable for delta
// arithmetic between shards.
type Snapshot struct {
	// CacheHits counts blocks served from the persistent profile cache.
	CacheHits uint64
	// Profiled counts blocks that went through the measurement protocol.
	Profiled uint64
	// Prescreened counts blocks skipped by static prescreening before any
	// measurement ran (their predicted statuses are in ByStatus).
	Prescreened uint64
	// CrosscheckMismatch counts blocks whose dynamic status disagreed
	// with the static prediction outside the whitelisted cases.
	CrosscheckMismatch uint64
	// ByStatus histograms the outcome of every Profile call, indexed by
	// Status (cache hits included — a cached rejection is still a
	// rejection; prescreened blocks contribute their predicted status).
	ByStatus [NumStatus]uint64
}

// Snapshot copies the current counters. Safe on a nil receiver.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	s.CacheHits = m.cacheHits.Load()
	s.Profiled = m.profiled.Load()
	s.Prescreened = m.prescreened.Load()
	s.CrosscheckMismatch = m.crossMism.Load()
	for i := range s.ByStatus {
		s.ByStatus[i] = m.status[i].Load()
	}
	return s
}

// Sub returns the counter deltas since prev (for per-shard reporting).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		CacheHits:          s.CacheHits - prev.CacheHits,
		Profiled:           s.Profiled - prev.Profiled,
		Prescreened:        s.Prescreened - prev.Prescreened,
		CrosscheckMismatch: s.CrosscheckMismatch - prev.CrosscheckMismatch,
	}
	for i := range s.ByStatus {
		d.ByStatus[i] = s.ByStatus[i] - prev.ByStatus[i]
	}
	return d
}

// Total is the number of blocks covered by the snapshot, including the
// statically prescreened ones that never reached the protocol.
func (s Snapshot) Total() uint64 { return s.CacheHits + s.Profiled + s.Prescreened }

// HitRate is the persistent-cache hit fraction (0 with no calls).
func (s Snapshot) HitRate() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.CacheHits) / float64(t)
	}
	return 0
}

// RejectHistogram renders the non-OK statuses as "crashed=3 unstable=1"
// ("none" if every call succeeded), with prescreen skips and cross-check
// mismatches appended when present ("... prescreened=5 cross-mismatch=1").
func (s Snapshot) RejectHistogram() string {
	var sb strings.Builder
	for i, n := range s.ByStatus {
		if Status(i) == StatusOK || n == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%d", Status(i), n)
	}
	if sb.Len() == 0 && s.Prescreened == 0 && s.CrosscheckMismatch == 0 {
		return "none"
	}
	if s.Prescreened > 0 {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "prescreened=%d", s.Prescreened)
	}
	if s.CrosscheckMismatch > 0 {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "cross-mismatch=%d", s.CrosscheckMismatch)
	}
	if sb.Len() == 0 {
		return "none"
	}
	return sb.String()
}
