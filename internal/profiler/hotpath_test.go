package profiler

import (
	"path/filepath"
	"testing"

	"bhive/internal/exec"
	"bhive/internal/machine"
	"bhive/internal/pipeline"
	"bhive/internal/profcache"
	"bhive/internal/uarch"
	"bhive/internal/vm"
)

// mapAndTrace replicates profile's monitored pass for tests that drive
// measureOn directly: map every faulting page, return the trace and graph.
func mapAndTrace(t *testing.T, p *Profiler, sc *scratch, m *machine.Machine, prog *machine.Program) ([]exec.Step, *pipeline.Graph) {
	t.Helper()
	var thePage *vm.PhysPage
	mapped := 0
	steps, err := m.ExecuteMonitored(prog, p.resetState(&sc.st), func(f *vm.Fault) bool {
		if !p.Opts.MapPages || !vm.ValidUserAddress(f.Addr) || mapped >= p.Opts.MaxFaults {
			return false
		}
		m.AS.Map(f.Addr, p.pageFor(m, &thePage))
		mapped++
		return true
	})
	if err != nil {
		t.Fatalf("monitored execute: %v", err)
	}
	return steps, m.PrepareGraph(prog, steps)
}

// TestMeasurementOrderIndependence pins down the two equivalences the hot
// path relies on: each unroll factor's measurement draws its RNG stream
// from (blockSeed, unroll) alone, and the low-factor measurement on the
// machine the high factor already warmed is identical to measuring it on a
// fresh machine. The low measurement must therefore come out the same
// whether it runs alone or after the high one.
func TestMeasurementOrderIndependence(t *testing.T) {
	p := New(uarch.Haswell(), DefaultOptions())
	for _, text := range []string{
		"add rax, rbx\nimul rcx, rdx",
		"mov rcx, qword ptr [rsp+8]\nadd rcx, rax\nmov qword ptr [rsp+8], rcx",
	} {
		b := block(t, text)
		seed := blockSeed(b.Insts)
		lo, hi := p.Opts.UnrollFactors(len(b.Insts))
		nLo := len(b.Insts) * lo

		// Low factor alone, on a fresh machine.
		scA := &scratch{}
		mA := scA.machine(p.CPU, seed)
		progA, err := mA.PrepareUnrolled(scA.unrolled(b.Insts, lo), len(b.Insts))
		if err != nil {
			t.Fatal(err)
		}
		stepsA, gA := mapAndTrace(t, p, scA, mA, progA)
		cA, rA := p.measureOn(mA, progA, gA, stepsA, lo, seed)
		if rA.Status != StatusOK {
			t.Fatalf("%q: lo-alone status = %v", text, rA.Status)
		}

		// High first, then low on the shared machine — Profile's order.
		scB := &scratch{}
		mB := scB.machine(p.CPU, seed)
		progB, err := mB.PrepareUnrolled(scB.unrolled(b.Insts, hi), len(b.Insts))
		if err != nil {
			t.Fatal(err)
		}
		stepsB, gB := mapAndTrace(t, p, scB, mB, progB)
		if _, rHi := p.measureOn(mB, progB, gB, stepsB, hi, seed); rHi.Status != StatusOK {
			t.Fatalf("%q: hi status = %v", text, rHi.Status)
		}
		cB, rB := p.measureOn(mB, progB.Slice(nLo), gB.Slice(nLo), stepsB[:nLo], lo, seed)
		if rB.Status != StatusOK {
			t.Fatalf("%q: lo-after-hi status = %v", text, rB.Status)
		}

		if cA != cB {
			t.Errorf("%q: lo cycles depend on measurement order: alone=%d after-hi=%d", text, cA, cB)
		}
		if rA.CleanSamples != rB.CleanSamples {
			t.Errorf("%q: clean samples depend on measurement order: alone=%d after-hi=%d",
				text, rA.CleanSamples, rB.CleanSamples)
		}
	}
}

// TestProfileDeterministic: repeated Profile calls (exercising the scratch
// pool reuse path) must return identical results.
func TestProfileDeterministic(t *testing.T) {
	p := New(uarch.Skylake(), DefaultOptions())
	b := block(t, "xor edx, edx\ndiv rcx\nadd rax, rdx")
	first := p.Profile(b)
	for i := 0; i < 3; i++ {
		if got := p.Profile(b); got != first {
			t.Fatalf("Profile run %d = %+v, first run %+v", i+2, got, first)
		}
	}
}

// TestProfileCacheIdentity: results served through the persistent cache —
// freshly stored, hit in memory, and hit after a save/reload cycle — must
// match the uncached profiler on every field.
func TestProfileCacheIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	pc, err := profcache.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	cpu := uarch.IvyBridge()
	plain := New(cpu, DefaultOptions())
	cached := New(cpu, DefaultOptions())
	cached.Cache = pc

	blocks := []string{
		"add rax, rbx\nimul rcx, rdx",              // ok
		"vfmadd231pd ymm0, ymm1, ymm2",             // unsupported on IVB
		"mov rax, qword ptr [0]\nadd rax, 1",       // crashes: null page
		"mov rcx, qword ptr [rsp+8]\nadd rax, rcx", // ok, memory
	}
	check := func(text string, got, want Result) {
		t.Helper()
		// Errors round-trip as text only; compare the rest field-wise.
		gotErr, wantErr := "", ""
		if got.Err != nil {
			gotErr = got.Err.Error()
		}
		if want.Err != nil {
			wantErr = want.Err.Error()
		}
		got.Err, want.Err = nil, nil
		if got != want || gotErr != wantErr {
			t.Errorf("%q: cached result %+v (err %q) != uncached %+v (err %q)",
				text, got, gotErr, want, wantErr)
		}
	}
	for _, text := range blocks {
		b := block(t, text)
		want := plain.Profile(b)
		check(text, cached.Profile(b), want) // fills the cache
		check(text, cached.Profile(b), want) // in-memory hit
	}
	if pc.Len() != len(blocks) {
		t.Fatalf("cache holds %d entries, want %d", pc.Len(), len(blocks))
	}

	if err := pc.Save(); err != nil {
		t.Fatal(err)
	}
	pc2, err := profcache.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if pc2.Len() != len(blocks) {
		t.Fatalf("reloaded cache holds %d entries, want %d", pc2.Len(), len(blocks))
	}
	reloaded := New(cpu, DefaultOptions())
	reloaded.Cache = pc2
	for _, text := range blocks {
		b := block(t, text)
		check(text, reloaded.Profile(b), plain.Profile(b))
	}

	// A different option set must miss the cache, not serve stale entries.
	other := New(cpu, MappingOptions())
	other.Cache = pc2
	b := block(t, blocks[0])
	want := New(cpu, MappingOptions()).Profile(b)
	check(blocks[0], other.Profile(b), want)
	if pc2.Len() != len(blocks)+1 {
		t.Fatalf("option change did not create a new entry: %d entries", pc2.Len())
	}
}

// TestUnrollSeedIndependent: the derived seeds must differ across unroll
// factors and not collide trivially across blocks.
func TestUnrollSeedIndependent(t *testing.T) {
	if unrollSeed(1, 4) == unrollSeed(1, 8) {
		t.Error("unroll factors 4 and 8 share a seed")
	}
	if unrollSeed(1, 4) == unrollSeed(2, 4) {
		t.Error("blocks 1 and 2 share a seed at unroll 4")
	}
}
