// Package profiler implements the BHive measurement framework: it profiles
// the steady-state throughput (cycles per iteration) of arbitrary x86-64
// basic blocks against the simulated machine.
//
// The methodology follows the paper:
//
//  1. A monitor intercepts the page faults of a measurement run, maps every
//     virtual page the block touches onto one chosen physical page, and
//     restarts the block from a re-initialized state, so the final trace of
//     addresses is identical to the mapping run's.
//  2. Registers and the physical page are initialized with a moderately
//     sized constant (0x12345600) so loaded values are usable pointers.
//  3. MXCSR is set to FTZ/DAZ to suppress gradual-underflow slowdowns.
//  4. Throughput is derived from two unroll factors:
//     (cycles(b,u) − cycles(b,u')) / (u − u'), which reaches steady state
//     without overflowing the instruction cache on large blocks.
//  5. A measurement is rejected unless the performance counters show zero
//     L1 data misses, zero L1 instruction misses, zero context switches and
//     zero cache-line-splitting accesses, and at least 8 of 16 samples are
//     clean and identical.
//
// Every technique can be disabled individually, which is how the paper's
// ablation tables are regenerated.
package profiler

import (
	"hash/fnv"
	"math"
	"math/rand"

	"bhive/internal/exec"
	"bhive/internal/machine"
	"bhive/internal/pipeline"
	"bhive/internal/uarch"
	"bhive/internal/vm"
	"bhive/internal/x86"
)

// InitPattern is the "moderately sized constant" used to initialize
// registers and memory.
const InitPattern = 0x12345600

// Options selects which measurement techniques are active.
type Options struct {
	// InitRegisters seeds all registers (and the physical page) with
	// InitPattern. Off in the Agner-script baseline.
	InitRegisters bool
	// MapPages runs the monitor that maps faulting pages. Off in the
	// baseline, where any memory access crashes the measurement.
	MapPages bool
	// SinglePhysPage maps every faulting virtual page to one physical
	// page; otherwise each virtual page gets its own frame (which defeats
	// the guaranteed-L1-hit property).
	SinglePhysPage bool
	// DerivedThroughput uses the two-unroll-factor formula; otherwise a
	// single naive unroll of NaiveUnroll copies is timed and divided.
	DerivedThroughput bool
	// DisableSubnormals sets MXCSR FTZ/DAZ during measurement.
	DisableSubnormals bool
	// FilterMisaligned rejects measurements with line-splitting accesses.
	FilterMisaligned bool

	NaiveUnroll     int // unroll factor for the naive method (paper: 100)
	MaxFaults       int // monitor gives up after this many mapped pages
	Samples         int // timings taken per unrolled program (paper: 16)
	MinCleanSamples int // identical clean timings required (paper: 8)

	// SwitchRate/SwitchCost model timer-interrupt noise per cycle.
	SwitchRate float64
	SwitchCost uint64

	// RealSampleNoise runs every one of the Samples timing runs through
	// the cycle-level model with interrupt injection enabled (slow but
	// fully faithful to the protocol). When false, the deterministic
	// timing run is taken once and per-sample interrupt arrivals are
	// drawn analytically — statistically equivalent, since an interrupted
	// sample is discarded either way.
	RealSampleNoise bool
}

// DefaultOptions is the full BHive methodology.
func DefaultOptions() Options {
	return Options{
		InitRegisters:     true,
		MapPages:          true,
		SinglePhysPage:    true,
		DerivedThroughput: true,
		DisableSubnormals: true,
		FilterMisaligned:  true,
		NaiveUnroll:       100,
		MaxFaults:         64,
		Samples:           16,
		MinCleanSamples:   8,
		SwitchRate:        2e-7,
		SwitchCost:        50_000,
	}
}

// BaselineOptions is the Agner-script baseline (Table I row "None"): time
// an unrolled copy of the block in an unmodified execution context.
func BaselineOptions() Options {
	o := DefaultOptions()
	o.InitRegisters = false
	o.MapPages = false
	o.SinglePhysPage = false
	o.DerivedThroughput = false
	o.DisableSubnormals = false
	return o
}

// MappingOptions adds page mapping but keeps naive unrolling
// (Table I row "Mapping all accessed pages").
func MappingOptions() Options {
	o := DefaultOptions()
	o.DerivedThroughput = false
	return o
}

// Status classifies a profiling attempt.
type Status int

const (
	// StatusOK means the block was successfully profiled: it executed,
	// incurred no cache misses or context switches, and was reproducible.
	StatusOK Status = iota
	// StatusCrashed: the block faulted and could not be repaired by
	// mapping (or mapping was disabled), or raised #DE/#GP.
	StatusCrashed
	// StatusUnsupported: the microarchitecture cannot execute the block.
	StatusUnsupported
	// StatusCacheMiss: the timed run had L1 data or instruction misses.
	StatusCacheMiss
	// StatusMisaligned: a load or store crossed a cache-line boundary.
	StatusMisaligned
	// StatusUnstable: fewer than MinCleanSamples timings were clean.
	StatusUnstable
)

var statusNames = [...]string{
	"ok", "crashed", "unsupported", "cache-miss", "misaligned", "unstable",
}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "status?"
}

// Result is the outcome of profiling one basic block.
type Result struct {
	Status     Status
	Throughput float64 // cycles per iteration at steady state
	Err        error   // the fault for StatusCrashed/StatusUnsupported

	// Counters from the accepted timing run of the larger unroll factor.
	Counters pipeline.Counters
	// UnrollHi/UnrollLo are the unroll factors used.
	UnrollHi, UnrollLo int
	// PagesMapped is how many virtual pages the monitor installed.
	PagesMapped int
	// CleanSamples of Samples timings were interference-free.
	CleanSamples int
}

// Profiler measures basic blocks on one microarchitecture.
type Profiler struct {
	CPU  *uarch.CPU
	Opts Options
}

// New builds a profiler with the given options.
func New(cpu *uarch.CPU, opts Options) *Profiler {
	return &Profiler{CPU: cpu, Opts: opts}
}

// blockSeed derives a deterministic per-block RNG seed.
func blockSeed(insts []x86.Inst) int64 {
	h := fnv.New64a()
	for i := range insts {
		raw, err := x86.Encode(insts[i])
		if err == nil {
			h.Write(raw)
		}
	}
	return int64(h.Sum64())
}

// unrollFactors picks unroll factors large enough to reach steady state
// while keeping the unrolled code compact (the point of the derived
// method).
func (p *Profiler) unrollFactors(n int) (lo, hi int) {
	if !p.Opts.DerivedThroughput {
		u := p.Opts.NaiveUnroll
		if u <= 0 {
			u = 100
		}
		return 0, u
	}
	lo = (100 + n - 1) / n
	if lo < 4 {
		lo = 4
	}
	if lo > 50 {
		lo = 50
	}
	return lo, 2 * lo
}

// Profile measures one basic block.
func (p *Profiler) Profile(b *x86.Block) Result {
	if len(b.Insts) == 0 {
		return Result{Status: StatusCrashed}
	}
	seed := blockSeed(b.Insts)
	rng := rand.New(rand.NewSource(seed))

	lo, hi := p.unrollFactors(len(b.Insts))
	res := Result{UnrollLo: lo, UnrollHi: hi}

	cHi, r := p.measureUnrolled(b, hi, rng)
	if r.Status != StatusOK {
		r.UnrollLo, r.UnrollHi = lo, hi
		return r
	}
	res.Counters = r.Counters
	res.PagesMapped = r.PagesMapped
	res.CleanSamples = r.CleanSamples

	if !p.Opts.DerivedThroughput {
		res.Throughput = float64(cHi) / float64(hi)
		return res
	}

	cLo, r2 := p.measureUnrolled(b, lo, rng)
	if r2.Status != StatusOK {
		r2.UnrollLo, r2.UnrollHi = lo, hi
		return r2
	}
	if cHi <= cLo {
		res.Status = StatusUnstable
		return res
	}
	res.Throughput = float64(cHi-cLo) / float64(hi-lo)
	return res
}

// measureUnrolled runs the full monitor/measure protocol for one unrolled
// program and returns the accepted cycle count.
func (p *Profiler) measureUnrolled(b *x86.Block, unroll int, rng *rand.Rand) (uint64, Result) {
	var res Result
	o := &p.Opts

	m := machine.New(p.CPU, int64(rng.Uint64()))
	insts := make([]x86.Inst, 0, len(b.Insts)*unroll)
	for i := 0; i < unroll; i++ {
		insts = append(insts, b.Insts...)
	}
	prog, err := m.Prepare(insts)
	if err != nil {
		if _, ok := err.(*uarch.UnsupportedError); ok {
			return 0, Result{Status: StatusUnsupported, Err: err}
		}
		return 0, Result{Status: StatusCrashed, Err: err}
	}

	newState := func() *exec.State {
		st := &exec.State{}
		if o.InitRegisters {
			st.InitRegisters(InitPattern)
		}
		if o.DisableSubnormals {
			st.FTZ, st.DAZ = true, true
		}
		return st
	}

	// The chosen physical page, initialized like the registers.
	var thePage *vm.PhysPage
	pageFor := func(addr uint64) *vm.PhysPage {
		if o.SinglePhysPage {
			if thePage == nil {
				thePage = m.AS.NewPhysPage()
				if o.InitRegisters {
					thePage.Fill(InitPattern)
				}
			}
			return thePage
		}
		f := m.AS.NewPhysPage()
		if o.InitRegisters {
			f.Fill(InitPattern)
		}
		return f
	}

	// Monitor loop (the paper's Figure "monitor" pseudocode): run, catch
	// the fault, map the page, restart from a re-initialized state.
	var steps []exec.Step
	for {
		steps, err = m.Execute(prog, newState())
		if err == nil {
			break
		}
		f, ok := err.(*vm.Fault)
		if !ok || !o.MapPages {
			return 0, Result{Status: StatusCrashed, Err: err}
		}
		if !vm.ValidUserAddress(f.Addr) {
			return 0, Result{Status: StatusCrashed, Err: err}
		}
		if res.PagesMapped >= o.MaxFaults {
			return 0, Result{Status: StatusCrashed, Err: err}
		}
		m.AS.Map(f.Addr, pageFor(f.Addr))
		res.PagesMapped++
	}

	// Warm-up execution: after this point, all memory accesses made by the
	// basic block are legal and (with the single-page mapping) hit L1.
	m.Time(prog, steps, machine.Config{})

	// Timed run.
	steps, err = m.Execute(prog, newState())
	if err != nil {
		return 0, Result{Status: StatusCrashed, Err: err}
	}
	ctr := m.Time(prog, steps, machine.Config{})
	res.Counters = ctr

	// Sample acceptance. The paper times each unrolled block 16 times and
	// requires at least 8 clean, identical timings.
	samples := o.Samples
	if samples <= 0 {
		samples = 16
	}
	clean := 0
	if o.RealSampleNoise {
		// Fully faithful: every sample is a separate timing run with
		// interrupt injection; clean samples are those with no context
		// switch, and they must agree on the cycle count.
		counts := make(map[uint64]int)
		for s := 0; s < samples; s++ {
			st, err := m.Execute(prog, newState())
			if err != nil {
				return 0, Result{Status: StatusCrashed, Err: err}
			}
			c := m.Time(prog, st, machine.Config{
				SwitchRate: o.SwitchRate, SwitchCost: o.SwitchCost,
			})
			if c.ContextSwitches == 0 {
				counts[c.Cycles]++
			}
		}
		for _, n := range counts {
			if n > clean {
				clean = n // the largest identical clean group
			}
		}
	} else {
		// The deterministic pipeline yields identical clean timings; timer
		// interrupts dirty individual samples at a rate proportional to
		// the measurement length.
		dirtyProb := 0.0
		if o.SwitchRate > 0 {
			dirtyProb = 1 - math.Exp(-o.SwitchRate*float64(ctr.Cycles))
		}
		for s := 0; s < samples; s++ {
			if rng.Float64() >= dirtyProb {
				clean++
			}
		}
	}
	res.CleanSamples = clean
	minClean := o.MinCleanSamples
	if minClean <= 0 {
		minClean = 8
	}
	if clean < minClean {
		res.Status = StatusUnstable
		return 0, res
	}

	// Modeling-assumption enforcement.
	if ctr.L1DReadMisses+ctr.L1DWriteMisses > 0 || ctr.L1IMisses > 0 {
		res.Status = StatusCacheMiss
		return ctr.Cycles, res
	}
	if o.FilterMisaligned && ctr.MisalignedLoads+ctr.MisalignedStores > 0 {
		res.Status = StatusMisaligned
		return ctr.Cycles, res
	}

	res.Status = StatusOK
	return ctr.Cycles, res
}

// MeasureRaw times one unrolled program without any acceptance filtering
// and returns the raw counters — used by the per-block ablation study
// (Table II), where even broken configurations report a number.
func (p *Profiler) MeasureRaw(b *x86.Block, unroll int) (pipeline.Counters, error) {
	rng := rand.New(rand.NewSource(blockSeed(b.Insts)))
	o := &p.Opts

	m := machine.New(p.CPU, int64(rng.Uint64()))
	insts := make([]x86.Inst, 0, len(b.Insts)*unroll)
	for i := 0; i < unroll; i++ {
		insts = append(insts, b.Insts...)
	}
	prog, err := m.Prepare(insts)
	if err != nil {
		return pipeline.Counters{}, err
	}
	newState := func() *exec.State {
		st := &exec.State{}
		if o.InitRegisters {
			st.InitRegisters(InitPattern)
		}
		if o.DisableSubnormals {
			st.FTZ, st.DAZ = true, true
		}
		return st
	}
	var thePage *vm.PhysPage
	mapped := 0
	var steps []exec.Step
	for {
		steps, err = m.Execute(prog, newState())
		if err == nil {
			break
		}
		f, ok := err.(*vm.Fault)
		if !ok || !o.MapPages || !vm.ValidUserAddress(f.Addr) || mapped > o.MaxFaults {
			return pipeline.Counters{}, err
		}
		var frame *vm.PhysPage
		if o.SinglePhysPage {
			if thePage == nil {
				thePage = m.AS.NewPhysPage()
				if o.InitRegisters {
					thePage.Fill(InitPattern)
				}
			}
			frame = thePage
		} else {
			frame = m.AS.NewPhysPage()
			if o.InitRegisters {
				frame.Fill(InitPattern)
			}
		}
		m.AS.Map(f.Addr, frame)
		mapped++
	}
	m.Time(prog, steps, machine.Config{})
	steps, err = m.Execute(prog, newState())
	if err != nil {
		return pipeline.Counters{}, err
	}
	return m.Time(prog, steps, machine.Config{}), nil
}
