// Package profiler implements the BHive measurement framework: it profiles
// the steady-state throughput (cycles per iteration) of arbitrary x86-64
// basic blocks against the simulated machine.
//
// The methodology follows the paper:
//
//  1. A monitor intercepts the page faults of a measurement run, maps every
//     virtual page the block touches onto one chosen physical page, and
//     resumes the block, so the final trace of addresses is identical to
//     the mapping run's.
//  2. Registers and the physical page are initialized with a moderately
//     sized constant (0x12345600) so loaded values are usable pointers.
//  3. MXCSR is set to FTZ/DAZ to suppress gradual-underflow slowdowns.
//  4. Throughput is derived from two unroll factors:
//     (cycles(b,u) − cycles(b,u')) / (u − u'), which reaches steady state
//     without overflowing the instruction cache on large blocks.
//  5. A measurement is rejected unless the performance counters show zero
//     L1 data misses, zero L1 instruction misses, zero context switches and
//     zero cache-line-splitting accesses, and at least 8 of 16 samples are
//     clean and identical.
//
// Every technique can be disabled individually, which is how the paper's
// ablation tables are regenerated.
//
// The hot path is allocation-conscious: each Profiler recycles machines,
// architectural state and unroll buffers through an internal pool (so
// Profile is safe for concurrent use), the unrolled program is prepared
// once at the high unroll factor and sliced down for the low one, and the
// monitor maps all faulting pages in a single functional pass instead of
// restarting execution per fault.
package profiler

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"bhive/internal/exec"
	"bhive/internal/machine"
	"bhive/internal/memo"
	"bhive/internal/pipeline"
	"bhive/internal/profcache"
	"bhive/internal/uarch"
	"bhive/internal/vm"
	"bhive/internal/x86"
)

// InitPattern is the "moderately sized constant" used to initialize
// registers and memory.
const InitPattern = 0x12345600

// Options selects which measurement techniques are active.
type Options struct {
	// InitRegisters seeds all registers (and the physical page) with
	// InitPattern. Off in the Agner-script baseline.
	InitRegisters bool
	// MapPages runs the monitor that maps faulting pages. Off in the
	// baseline, where any memory access crashes the measurement.
	MapPages bool
	// SinglePhysPage maps every faulting virtual page to one physical
	// page; otherwise each virtual page gets its own frame (which defeats
	// the guaranteed-L1-hit property).
	SinglePhysPage bool
	// DerivedThroughput uses the two-unroll-factor formula; otherwise a
	// single naive unroll of NaiveUnroll copies is timed and divided.
	DerivedThroughput bool
	// DisableSubnormals sets MXCSR FTZ/DAZ during measurement.
	DisableSubnormals bool
	// FilterMisaligned rejects measurements with line-splitting accesses.
	FilterMisaligned bool

	NaiveUnroll     int // unroll factor for the naive method (paper: 100)
	MaxFaults       int // monitor gives up after this many mapped pages
	Samples         int // timings taken per unrolled program (paper: 16)
	MinCleanSamples int // identical clean timings required (paper: 8)

	// SwitchRate/SwitchCost model timer-interrupt noise per cycle.
	SwitchRate float64
	SwitchCost uint64

	// RealSampleNoise runs every one of the Samples timing runs through
	// the cycle-level model with interrupt injection enabled (slow but
	// fully faithful to the protocol). When false, the deterministic
	// timing run is taken once and per-sample interrupt arrivals are
	// drawn analytically — statistically equivalent, since an interrupted
	// sample is discarded either way.
	RealSampleNoise bool

	// ModeledFrontEnd times every run with the uiCA-style decoded front
	// end (predecode, MITE/DSB/LSD delivery, switch penalties) instead of
	// the 16-bytes-per-cycle fetch approximation. Off by default: the
	// paper's tables are produced by the legacy front end.
	ModeledFrontEnd bool
}

// DefaultOptions is the full BHive methodology.
func DefaultOptions() Options {
	return Options{
		InitRegisters:     true,
		MapPages:          true,
		SinglePhysPage:    true,
		DerivedThroughput: true,
		DisableSubnormals: true,
		FilterMisaligned:  true,
		NaiveUnroll:       100,
		MaxFaults:         64,
		Samples:           16,
		MinCleanSamples:   8,
		SwitchRate:        2e-7,
		SwitchCost:        50_000,
	}
}

// BaselineOptions is the Agner-script baseline (Table I row "None"): time
// an unrolled copy of the block in an unmodified execution context.
func BaselineOptions() Options {
	o := DefaultOptions()
	o.InitRegisters = false
	o.MapPages = false
	o.SinglePhysPage = false
	o.DerivedThroughput = false
	o.DisableSubnormals = false
	return o
}

// MappingOptions adds page mapping but keeps naive unrolling
// (Table I row "Mapping all accessed pages").
func MappingOptions() Options {
	o := DefaultOptions()
	o.DerivedThroughput = false
	return o
}

// Fingerprint encodes every Options field into a string, so any change in
// measurement configuration changes persistent-cache keys.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("%+v", o)
}

// Status classifies a profiling attempt.
type Status int

const (
	// StatusOK means the block was successfully profiled: it executed,
	// incurred no cache misses or context switches, and was reproducible.
	StatusOK Status = iota
	// StatusCrashed: the block faulted and could not be repaired by
	// mapping (or mapping was disabled), or raised #DE/#GP.
	StatusCrashed
	// StatusUnsupported: the microarchitecture cannot execute the block.
	StatusUnsupported
	// StatusCacheMiss: the timed run had L1 data or instruction misses.
	StatusCacheMiss
	// StatusMisaligned: a load or store crossed a cache-line boundary.
	StatusMisaligned
	// StatusUnstable: fewer than MinCleanSamples timings were clean.
	StatusUnstable
)

var statusNames = [...]string{
	"ok", "crashed", "unsupported", "cache-miss", "misaligned", "unstable",
}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "status?"
}

// Result is the outcome of profiling one basic block.
type Result struct {
	Status     Status
	Throughput float64 // cycles per iteration at steady state
	Err        error   // the fault for StatusCrashed/StatusUnsupported

	// Counters from the accepted timing run of the larger unroll factor.
	Counters pipeline.Counters
	// UnrollHi/UnrollLo are the unroll factors used.
	UnrollHi, UnrollLo int
	// PagesMapped is how many virtual pages the monitor installed.
	PagesMapped int
	// CleanSamples of Samples timings were interference-free.
	CleanSamples int
}

// Profiler measures basic blocks on one microarchitecture. It is safe for
// concurrent use by multiple goroutines.
type Profiler struct {
	CPU  *uarch.CPU
	Opts Options

	// Cache, when non-nil, is consulted before profiling and updated
	// after, keyed by (block bytes, microarchitecture, options, seed).
	Cache *profcache.Cache

	// Metrics, when non-nil, accumulates cache-hit counts and the
	// per-status outcome histogram across every Profile call (shared by
	// all goroutines using this profiler).
	Metrics *Metrics

	pool sync.Pool // *scratch
}

// New builds a profiler with the given options.
func New(cpu *uarch.CPU, opts Options) *Profiler {
	return &Profiler{CPU: cpu, Opts: opts}
}

// scratch bundles the per-measurement state a Profile call needs, recycled
// across blocks so the steady-state hot path allocates almost nothing.
type scratch struct {
	m     *machine.Machine
	st    exec.State
	insts []x86.Inst
}

func (p *Profiler) getScratch() *scratch {
	if v := p.pool.Get(); v != nil {
		return v.(*scratch)
	}
	return &scratch{}
}

// machine returns the scratch machine reset to fresh-construction state.
func (sc *scratch) machine(cpu *uarch.CPU, seed int64) *machine.Machine {
	if sc.m == nil || sc.m.CPU != cpu {
		sc.m = machine.New(cpu, seed)
	} else {
		sc.m.Reset()
	}
	return sc.m
}

// unrolled builds unroll copies of insts in the scratch buffer.
func (sc *scratch) unrolled(insts []x86.Inst, unroll int) []x86.Inst {
	out := sc.insts[:0]
	for i := 0; i < unroll; i++ {
		out = append(out, insts...)
	}
	sc.insts = out
	return out
}

// resetState re-initializes the scratch architectural state exactly as a
// freshly allocated one.
func (p *Profiler) resetState(st *exec.State) *exec.State {
	*st = exec.State{}
	if p.Opts.InitRegisters {
		st.InitRegisters(InitPattern)
	}
	if p.Opts.DisableSubnormals {
		st.FTZ, st.DAZ = true, true
	}
	return st
}

// blockSeed derives a deterministic per-block RNG seed.
func blockSeed(insts []x86.Inst) int64 {
	h := fnv.New64a()
	for i := range insts {
		raw, err := memo.Encode(&insts[i])
		if err == nil {
			h.Write(raw)
		}
	}
	return int64(h.Sum64())
}

// unrollSeed derives the RNG seed for one unroll factor's measurement.
// Each factor's stream depends only on (blockSeed, unroll) — not on how
// many measurements ran before it — so the hi and lo measurements are
// order-independent and skipping one cannot perturb the other.
func unrollSeed(seed int64, unroll int) int64 {
	h := fnv.New64a()
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(unroll))
	h.Write(b[:])
	return int64(h.Sum64())
}

// sampleRNG is a splitmix64 stream for the sample-acceptance draws.
// Seeding math/rand's 607-word lagged-Fibonacci state per measurement is
// measurable overhead on the hot path; the acceptance test only needs a
// deterministic uniform stream.
type sampleRNG uint64

func (r *sampleRNG) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *sampleRNG) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// blockHex is the lowercase hex of the block's encoded bytes — the
// canonical BHive corpus representation, used as the cache identity.
func blockHex(insts []x86.Inst) string {
	var buf []byte
	for i := range insts {
		raw, err := memo.Encode(&insts[i])
		if err == nil {
			buf = append(buf, raw...)
		}
	}
	return hex.EncodeToString(buf)
}

// UnrollFactors picks the unroll factors the protocol would use for a
// block of n instructions: large enough to reach steady state while
// keeping the unrolled code compact (the point of the derived method).
// With DerivedThroughput off, lo is 0 and hi is the naive factor. It is
// exported so static analyses (internal/blocklint) can replicate the
// exact unrolled footprint the profiler will execute.
func (o Options) UnrollFactors(n int) (lo, hi int) {
	if !o.DerivedThroughput {
		u := o.NaiveUnroll
		if u <= 0 {
			u = 100
		}
		return 0, u
	}
	lo = (100 + n - 1) / n
	if lo < 4 {
		lo = 4
	}
	if lo > 50 {
		lo = 50
	}
	return lo, 2 * lo
}

// Profile measures one basic block.
func (p *Profiler) Profile(b *x86.Block) Result {
	if len(b.Insts) == 0 {
		p.Metrics.record(StatusCrashed, false)
		return Result{Status: StatusCrashed}
	}
	seed := blockSeed(b.Insts)
	if p.Cache == nil {
		res := p.profile(b, seed)
		p.Metrics.record(res.Status, false)
		return res
	}
	key := profcache.Key(blockHex(b.Insts), p.CPU.Name, p.Opts.Fingerprint(), seed)
	if e, ok := p.Cache.Get(key); ok {
		res := resultFromEntry(e)
		p.Metrics.record(res.Status, true)
		return res
	}
	res := p.profile(b, seed)
	p.Cache.Put(key, entryFromResult(res))
	p.Metrics.record(res.Status, false)
	return res
}

// profile runs the measurement protocol, bypassing the persistent cache.
func (p *Profiler) profile(b *x86.Block, seed int64) Result {
	lo, hi := p.Opts.UnrollFactors(len(b.Insts))
	res := Result{UnrollLo: lo, UnrollHi: hi}

	sc := p.getScratch()
	defer p.pool.Put(sc)

	// Prepare once at the high factor; the low-factor program is a prefix
	// of the same prepared code, so it is derived by slicing.
	m := sc.machine(p.CPU, seed)
	prog, err := m.PrepareUnrolled(sc.unrolled(b.Insts, hi), len(b.Insts))
	if err != nil {
		if _, ok := err.(*uarch.UnsupportedError); ok {
			return Result{Status: StatusUnsupported, Err: err, UnrollLo: lo, UnrollHi: hi}
		}
		return Result{Status: StatusCrashed, Err: err, UnrollLo: lo, UnrollHi: hi}
	}

	// One monitored functional pass at the high factor maps every page the
	// block touches and yields the dynamic trace. The monitor repairs each
	// fault and resumes in place, so this trace is identical to a clean
	// run's; execution of a straight-line block is deterministic, so the
	// low factor's trace is its prefix. One pass therefore serves the
	// warm-ups and every timing of both factors. The chosen physical page
	// is shared by both, exactly as the page mapping itself is.
	var thePage *vm.PhysPage
	pagesMapped := 0
	onFault := func(f *vm.Fault) bool {
		if !p.Opts.MapPages || !vm.ValidUserAddress(f.Addr) || pagesMapped >= p.Opts.MaxFaults {
			return false
		}
		m.AS.Map(f.Addr, p.pageFor(m, &thePage))
		pagesMapped++
		return true
	}
	steps, err := m.ExecuteMonitored(prog, p.resetState(&sc.st), onFault)
	if err != nil {
		return Result{Status: StatusCrashed, Err: err, UnrollLo: lo, UnrollHi: hi}
	}

	// The µop dependence graph is likewise built once; the low factor's
	// graph is a prefix view of it.
	g := m.PrepareGraph(prog, steps)

	cHi, r := p.measureOn(m, prog, g, steps, hi, seed)
	r.PagesMapped = pagesMapped
	if r.Status != StatusOK {
		r.UnrollLo, r.UnrollHi = lo, hi
		return r
	}
	res.Counters = r.Counters
	res.PagesMapped = r.PagesMapped
	res.CleanSamples = r.CleanSamples

	if !p.Opts.DerivedThroughput {
		res.Throughput = float64(cHi) / float64(hi)
		return res
	}

	// The low measurement reuses the machine: its page working set is a
	// subset of the high run's (same code prefix, same initial state), so
	// the mapping is already in place and the warm-up run re-establishes
	// the cache state the protocol requires.
	nLo := len(b.Insts) * lo
	cLo, r2 := p.measureOn(m, prog.Slice(nLo), g.Slice(nLo), steps[:nLo], lo, seed)
	if r2.Status != StatusOK {
		r2.UnrollLo, r2.UnrollHi = lo, hi
		r2.PagesMapped = pagesMapped
		return r2
	}
	if cHi <= cLo {
		res.Status = StatusUnstable
		return res
	}
	res.Throughput = float64(cHi-cLo) / float64(hi-lo)
	return res
}

// pageFor returns the frame to map a faulting page to, honoring the
// single-physical-page technique.
func (p *Profiler) pageFor(m *machine.Machine, thePage **vm.PhysPage) *vm.PhysPage {
	if p.Opts.SinglePhysPage {
		if *thePage == nil {
			*thePage = m.AS.NewPhysPage()
			if p.Opts.InitRegisters {
				(*thePage).Fill(InitPattern)
			}
		}
		return *thePage
	}
	f := m.AS.NewPhysPage()
	if p.Opts.InitRegisters {
		f.Fill(InitPattern)
	}
	return f
}

// measureOn runs the measurement protocol for one unrolled program whose
// pages are already mapped (profile's monitored pass), whose trace is
// already known (deterministic execution — the trace doubles as the timed
// run's), and whose dependence graph is already built. The per-factor cost
// is the warm-up walk plus scheduling runs.
func (p *Profiler) measureOn(m *machine.Machine, prog *machine.Program, g *pipeline.Graph, steps []exec.Step, unroll int, seed int64) (uint64, Result) {
	var res Result
	o := &p.Opts

	// Base timing configuration: the front-end mode and the block size
	// (the modeled front end treats the unrolled program as `unroll`
	// iterations of the basic block).
	base := machine.Config{ModeledFrontEnd: o.ModeledFrontEnd}
	if o.ModeledFrontEnd && unroll > 0 {
		base.LoopBody = len(prog.Insts) / unroll
	}

	rng := sampleRNG(unrollSeed(seed, unroll))
	if o.RealSampleNoise {
		// Only the fully-faithful mode consumes the machine RNG (for
		// interrupt arrivals); seeding it otherwise is wasted work.
		m.Rand = rand.New(rand.NewSource(int64(rng.next())))
	}

	// Warm-up: all memory accesses made by the basic block are legal and
	// (with the single-page mapping) hit L1. Only the cache resident set
	// matters here, so the warm-up touches lines directly rather than
	// paying for a full pipeline simulation.
	m.WarmCaches(prog, steps)

	// Timed run.
	ctr := m.TimeGraph(g, base)
	res.Counters = ctr

	// Sample acceptance. The paper times each unrolled block 16 times and
	// requires at least 8 clean, identical timings.
	samples := o.Samples
	if samples <= 0 {
		samples = 16
	}
	clean := 0
	if o.RealSampleNoise {
		// Fully faithful: every sample is a separate timing run with
		// interrupt injection; clean samples are those with no context
		// switch, and they must agree on the cycle count. The functional
		// re-execution per sample is gone — the trace is deterministic, so
		// each sample is the scheduling loop over the prepared graph.
		counts := make(map[uint64]int)
		for s := 0; s < samples; s++ {
			scfg := base
			scfg.SwitchRate, scfg.SwitchCost = o.SwitchRate, o.SwitchCost
			c := m.TimeGraph(g, scfg)
			if c.ContextSwitches == 0 {
				counts[c.Cycles]++
			}
		}
		for _, n := range counts {
			if n > clean {
				clean = n // the largest identical clean group
			}
		}
	} else {
		// The deterministic pipeline yields identical clean timings; timer
		// interrupts dirty individual samples at a rate proportional to
		// the measurement length.
		dirtyProb := 0.0
		if o.SwitchRate > 0 {
			dirtyProb = 1 - math.Exp(-o.SwitchRate*float64(ctr.Cycles))
		}
		for s := 0; s < samples; s++ {
			if rng.float64() >= dirtyProb {
				clean++
			}
		}
	}
	res.CleanSamples = clean
	minClean := o.MinCleanSamples
	if minClean <= 0 {
		minClean = 8
	}
	if clean < minClean {
		res.Status = StatusUnstable
		return 0, res
	}

	// Modeling-assumption enforcement.
	if ctr.L1DReadMisses+ctr.L1DWriteMisses > 0 || ctr.L1IMisses > 0 {
		res.Status = StatusCacheMiss
		return ctr.Cycles, res
	}
	if o.FilterMisaligned && ctr.MisalignedLoads+ctr.MisalignedStores > 0 {
		res.Status = StatusMisaligned
		return ctr.Cycles, res
	}

	res.Status = StatusOK
	return ctr.Cycles, res
}

// MeasureRaw times one unrolled program without any acceptance filtering
// and returns the raw counters — used by the per-block ablation study
// (Table II), where even broken configurations report a number.
func (p *Profiler) MeasureRaw(b *x86.Block, unroll int) (pipeline.Counters, error) {
	o := &p.Opts
	seed := blockSeed(b.Insts)

	sc := p.getScratch()
	defer p.pool.Put(sc)

	m := sc.machine(p.CPU, unrollSeed(seed, unroll))
	prog, err := m.PrepareUnrolled(sc.unrolled(b.Insts, unroll), len(b.Insts))
	if err != nil {
		return pipeline.Counters{}, err
	}

	var thePage *vm.PhysPage
	mapped := 0
	onFault := func(f *vm.Fault) bool {
		if !o.MapPages || !vm.ValidUserAddress(f.Addr) || mapped > o.MaxFaults {
			return false
		}
		m.AS.Map(f.Addr, p.pageFor(m, &thePage))
		mapped++
		return true
	}
	steps, err := m.ExecuteMonitored(prog, p.resetState(&sc.st), onFault)
	if err != nil {
		return pipeline.Counters{}, err
	}
	g := m.PrepareGraph(prog, steps)
	base := machine.Config{ModeledFrontEnd: o.ModeledFrontEnd}
	if o.ModeledFrontEnd {
		base.LoopBody = len(b.Insts)
	}
	m.TimeGraph(g, base) // warm-up
	return m.TimeGraph(g, base), nil
}

// entryFromResult converts a Result for persistence. The error is stored
// as text; its concrete type is not preserved across the cache.
func entryFromResult(r Result) profcache.Entry {
	e := profcache.Entry{
		Status:       int(r.Status),
		Throughput:   r.Throughput,
		UnrollHi:     r.UnrollHi,
		UnrollLo:     r.UnrollLo,
		PagesMapped:  r.PagesMapped,
		CleanSamples: r.CleanSamples,
		Counters:     r.Counters,
	}
	if r.Err != nil {
		e.ErrText = r.Err.Error()
	}
	return e
}

func resultFromEntry(e profcache.Entry) Result {
	r := Result{
		Status:       Status(e.Status),
		Throughput:   e.Throughput,
		UnrollHi:     e.UnrollHi,
		UnrollLo:     e.UnrollLo,
		PagesMapped:  e.PagesMapped,
		CleanSamples: e.CleanSamples,
		Counters:     e.Counters,
	}
	if e.ErrText != "" {
		r.Err = errors.New(e.ErrText)
	}
	return r
}
