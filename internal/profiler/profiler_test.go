package profiler

import (
	"testing"

	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func block(t *testing.T, text string) *x86.Block {
	t.Helper()
	b, err := x86.ParseBlock(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestProfileRegisterOnlyBlock(t *testing.T) {
	p := New(uarch.Haswell(), DefaultOptions())
	r := p.Profile(block(t, "add rax, rbx"))
	if r.Status != StatusOK {
		t.Fatalf("status %v (%v)", r.Status, r.Err)
	}
	if r.Throughput < 0.9 || r.Throughput > 1.1 {
		t.Fatalf("dependent add throughput %.3f", r.Throughput)
	}
}

func TestProfileMemoryBlockNeedsMapping(t *testing.T) {
	// The CRC block crashes without mapping and profiles with it.
	text := `add $1, %rdi
		mov %edx, %eax
		shr $8, %rdx
		xorb -1(%rdi), %al
		movzbl %al, %eax
		xor 0x4110a(, %rax, 8), %rdx
		cmp %rcx, %rdi`

	baseline := New(uarch.Haswell(), BaselineOptions())
	r := baseline.Profile(block(t, text))
	if r.Status != StatusCrashed {
		t.Fatalf("baseline should crash, got %v", r.Status)
	}

	full := New(uarch.Haswell(), DefaultOptions())
	opts := DefaultOptions()
	opts.FilterMisaligned = false // the table walk occasionally splits lines
	full = New(uarch.Haswell(), opts)
	r = full.Profile(block(t, text))
	if r.Status != StatusOK {
		t.Fatalf("full methodology should profile the CRC block: %v (%v)", r.Status, r.Err)
	}
	if r.Throughput < 6 || r.Throughput > 11 {
		t.Fatalf("CRC throughput %.2f, paper measured 8.25", r.Throughput)
	}
	if r.PagesMapped == 0 {
		t.Fatal("monitor must have mapped pages")
	}
}

func TestZeroIdiomBlockThroughput(t *testing.T) {
	p := New(uarch.Haswell(), DefaultOptions())
	r := p.Profile(block(t, "vxorps %xmm2, %xmm2, %xmm2"))
	if r.Status != StatusOK {
		t.Fatalf("%v (%v)", r.Status, r.Err)
	}
	if r.Throughput < 0.2 || r.Throughput > 0.35 {
		t.Fatalf("vxorps idiom throughput %.3f, paper measured 0.25", r.Throughput)
	}
}

func TestDivBlockThroughput(t *testing.T) {
	p := New(uarch.Haswell(), DefaultOptions())
	r := p.Profile(block(t, "xor %edx, %edx\ndiv %ecx\ntest %edx, %edx"))
	if r.Status != StatusOK {
		t.Fatalf("%v (%v)", r.Status, r.Err)
	}
	if r.Throughput < 18 || r.Throughput > 26 {
		t.Fatalf("div block throughput %.2f, paper measured 21.62", r.Throughput)
	}
}

func TestDistinctPhysPagesCauseMisses(t *testing.T) {
	// Strided loads across >8 pages with identical page offsets: with one
	// physical page per virtual page the 8-way L1 set overflows; with the
	// single-page trick everything hits.
	text := `mov rax, qword ptr [rbx]
		mov rcx, qword ptr [rbx+0x1000]
		mov rdx, qword ptr [rbx+0x2000]
		mov rsi, qword ptr [rbx+0x3000]
		mov rdi, qword ptr [rbx+0x4000]
		mov r8, qword ptr [rbx+0x5000]
		mov r9, qword ptr [rbx+0x6000]
		mov r10, qword ptr [rbx+0x7000]
		mov r11, qword ptr [rbx+0x8000]
		mov r12, qword ptr [rbx+0x9000]
		mov r13, qword ptr [rbx+0xa000]`

	multi := MappingOptions()
	multi.SinglePhysPage = false
	pm := New(uarch.Haswell(), multi)
	rm := pm.Profile(block(t, text))
	if rm.Status != StatusCacheMiss {
		t.Fatalf("distinct frames should miss: %v", rm.Status)
	}

	ps := New(uarch.Haswell(), MappingOptions())
	rs := ps.Profile(block(t, text))
	if rs.Status != StatusOK {
		t.Fatalf("single frame should hit: %v (%v)", rs.Status, rs.Err)
	}
}

func TestLargeBlockNaiveVsDerived(t *testing.T) {
	// A ~1.5KB block: unrolled 100x it overflows the 32KB L1I and is
	// rejected under naive unrolling, but profiles under the derived
	// method with small unroll factors.
	var text string
	for i := 0; i < 100; i++ {
		text += "vfmadd231ps %ymm2, %ymm3, %ymm0\nadd rax, 1\nvaddps %ymm5, %ymm6, %ymm7\n"
	}
	b := block(t, text)

	naive := New(uarch.Haswell(), MappingOptions())
	rn := naive.Profile(b)
	if rn.Status != StatusCacheMiss {
		t.Fatalf("naive 100x unroll should blow L1I: %v", rn.Status)
	}

	full := New(uarch.Haswell(), DefaultOptions())
	rf := full.Profile(b)
	if rf.Status != StatusOK {
		t.Fatalf("derived method should profile it: %v (%v)", rf.Status, rf.Err)
	}
	if rf.UnrollHi >= 100 {
		t.Fatalf("derived method should use small unrolls, got %d", rf.UnrollHi)
	}
}

func TestMisalignedFilter(t *testing.T) {
	// A load at offset 0x3c crosses a 64-byte line.
	text := "mov rax, qword ptr [rbx+0x3c]"
	p := New(uarch.Haswell(), DefaultOptions())
	r := p.Profile(block(t, text))
	if r.Status != StatusMisaligned {
		t.Fatalf("expected misaligned rejection, got %v", r.Status)
	}

	opts := DefaultOptions()
	opts.FilterMisaligned = false
	p2 := New(uarch.Haswell(), opts)
	r2 := p2.Profile(block(t, text))
	if r2.Status != StatusOK {
		t.Fatalf("filter off: %v", r2.Status)
	}
}

func TestUnsupportedBlockOnIvyBridge(t *testing.T) {
	p := New(uarch.IvyBridge(), DefaultOptions())
	r := p.Profile(block(t, "vfmadd231ps %ymm1, %ymm2, %ymm3"))
	if r.Status != StatusUnsupported {
		t.Fatalf("got %v", r.Status)
	}
}

func TestInvalidPointerCrashes(t *testing.T) {
	// A null-page dereference cannot be mapped.
	p := New(uarch.Haswell(), DefaultOptions())
	r := p.Profile(block(t, "xor ebx, ebx\nmov rax, qword ptr [rbx]"))
	if r.Status != StatusCrashed {
		t.Fatalf("null deref must crash, got %v", r.Status)
	}
}

func TestDeterminism(t *testing.T) {
	p := New(uarch.Haswell(), DefaultOptions())
	b := block(t, "add rax, rbx\nmov rcx, qword ptr [rsp+8]")
	r1 := p.Profile(b)
	r2 := p.Profile(b)
	if r1.Status != StatusOK || r1.Throughput != r2.Throughput {
		t.Fatalf("profiling must be deterministic: %v %.3f vs %.3f",
			r1.Status, r1.Throughput, r2.Throughput)
	}
}

func TestSubnormalNormalization(t *testing.T) {
	// A block whose FP inputs come from memory filled with the pattern
	// 0x12345600 — those bits decode to tiny but *normal* floats, so this
	// exercises the FTZ path only through the option flag. Check that both
	// settings profile, and that disabling the protection never *increases*
	// the measured throughput.
	text := "movss xmm0, dword ptr [rsp]\nmulss xmm0, xmm1\naddss xmm0, xmm2"
	withFTZ := New(uarch.Haswell(), DefaultOptions())
	r1 := withFTZ.Profile(block(t, text))
	if r1.Status != StatusOK {
		t.Fatalf("%v (%v)", r1.Status, r1.Err)
	}
	opts := DefaultOptions()
	opts.DisableSubnormals = false
	without := New(uarch.Haswell(), opts)
	r2 := without.Profile(block(t, text))
	if r2.Status == StatusOK && r2.Throughput < r1.Throughput-0.01 {
		t.Fatalf("gradual underflow cannot make code faster: %.2f vs %.2f",
			r2.Throughput, r1.Throughput)
	}
}

func TestRealSampleNoiseProtocol(t *testing.T) {
	b := block(t, "add rax, rbx\nmov rcx, qword ptr [rsp+8]")

	// Quiet machine: all 16 real samples are clean and identical.
	opts := DefaultOptions()
	opts.RealSampleNoise = true
	opts.SwitchRate = 0
	p := New(uarch.Haswell(), opts)
	r := p.Profile(b)
	if r.Status != StatusOK || r.CleanSamples != opts.Samples {
		t.Fatalf("quiet: %v, %d clean", r.Status, r.CleanSamples)
	}

	// Pathologically noisy machine: most samples get interrupted and the
	// measurement is rejected as unstable.
	noisy := DefaultOptions()
	noisy.RealSampleNoise = true
	noisy.SwitchRate = 0.05
	noisy.SwitchCost = 1000
	pn := New(uarch.Haswell(), noisy)
	rn := pn.Profile(b)
	if rn.Status != StatusUnstable {
		t.Fatalf("noisy machine should be unstable, got %v (%d clean)", rn.Status, rn.CleanSamples)
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		StatusOK: "ok", StatusCrashed: "crashed", StatusUnsupported: "unsupported",
		StatusCacheMiss: "cache-miss", StatusMisaligned: "misaligned",
		StatusUnstable: "unstable",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d: %q want %q", s, s.String(), want)
		}
	}
	if Status(99).String() != "status?" {
		t.Error("unknown status")
	}
}

func TestMeasureRaw(t *testing.T) {
	p := New(uarch.Haswell(), DefaultOptions())
	b := block(t, "add rax, rbx\nmov rcx, qword ptr [rsp+8]")
	c8, err := p.MeasureRaw(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	c16, err := p.MeasureRaw(b, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c16.Cycles <= c8.Cycles {
		t.Fatalf("more unrolling cannot be faster: %d vs %d", c16.Cycles, c8.Cycles)
	}
	tp := float64(c16.Cycles-c8.Cycles) / 8
	if tp < 0.5 || tp > 3 {
		t.Fatalf("derived throughput %.2f implausible", tp)
	}
	// Raw measurement reports counters even for configurations the
	// acceptance filters would reject.
	noMap := BaselineOptions()
	pb := New(uarch.Haswell(), noMap)
	if _, err := pb.MeasureRaw(b, 8); err == nil {
		t.Fatal("baseline raw measurement of a memory block must fail")
	}
	// Unsupported ISA propagates.
	ivb := New(uarch.IvyBridge(), DefaultOptions())
	if _, err := ivb.MeasureRaw(block(t, "vfmadd231ps %ymm1, %ymm2, %ymm3"), 4); err == nil {
		t.Fatal("unsupported instruction must error")
	}
}

func TestEmptyBlockProfile(t *testing.T) {
	p := New(uarch.Haswell(), DefaultOptions())
	if r := p.Profile(&x86.Block{}); r.Status != StatusCrashed {
		t.Fatalf("empty block: %v", r.Status)
	}
}

func TestUnrollFactorSelection(t *testing.T) {
	p := New(uarch.Haswell(), DefaultOptions())
	lo, hi := p.Opts.UnrollFactors(1)
	if lo < 4 || hi != 2*lo || lo > 100 {
		t.Fatalf("single-inst block: %d/%d", lo, hi)
	}
	lo, hi = p.Opts.UnrollFactors(500)
	if lo != 4 || hi != 8 {
		t.Fatalf("huge block must use the minimum: %d/%d", lo, hi)
	}
	naive := New(uarch.Haswell(), MappingOptions())
	lo, hi = naive.Opts.UnrollFactors(10)
	if lo != 0 || hi != 100 {
		t.Fatalf("naive mode: %d/%d", lo, hi)
	}
}
