package profiler

import (
	"testing"

	"bhive/internal/uarch"
)

// TestOptionsAblation locks the ablation semantics behind the paper's
// Table I: starting from the full methodology (DefaultOptions), toggling
// each measurement technique off individually must reproduce that
// technique's qualitative failure mode on a block constructed to need it.
// These are the semantics Table1/Table2 regenerate; a profiler change
// that silently makes a disabled technique unnecessary (or a default one
// insufficient) fails here with the technique's name.
func TestOptionsAblation(t *testing.T) {
	// Strided loads with identical page offsets: >8 distinct physical
	// frames overflow the 8-way L1 set unless everything maps to one frame.
	strided := `mov rax, qword ptr [rbx]
		mov rcx, qword ptr [rbx+0x1000]
		mov rdx, qword ptr [rbx+0x2000]
		mov rsi, qword ptr [rbx+0x3000]
		mov rdi, qword ptr [rbx+0x4000]
		mov r8, qword ptr [rbx+0x5000]
		mov r9, qword ptr [rbx+0x6000]
		mov r10, qword ptr [rbx+0x7000]
		mov r11, qword ptr [rbx+0x8000]
		mov r12, qword ptr [rbx+0x9000]
		mov r13, qword ptr [rbx+0xa000]`

	// A ~1.5KB block: 100x naive unrolling overflows the 32KB L1I.
	var big string
	for i := 0; i < 100; i++ {
		big += "vfmadd231ps %ymm2, %ymm3, %ymm0\nadd rax, 1\nvaddps %ymm5, %ymm6, %ymm7\n"
	}

	cases := []struct {
		technique string
		toggle    func(*Options)
		text      string
		// withDefault / withToggled are the expected statuses under the
		// full methodology and with the one technique disabled.
		withDefault, withToggled Status
	}{
		{
			// Table I/II: without page mapping, any memory access faults.
			technique: "MapPages",
			toggle:    func(o *Options) { o.MapPages = false },
			text:      "mov rax, qword ptr [rbx]\nadd rax, 1",
			withDefault: StatusOK, withToggled: StatusCrashed,
		},
		{
			// Register initialization gives pointers the mappable pattern;
			// uninitialized registers dereference the unmappable null page.
			technique: "InitRegisters",
			toggle:    func(o *Options) { o.InitRegisters = false },
			text:      "mov rax, qword ptr [rbx]\nadd rax, 1",
			withDefault: StatusOK, withToggled: StatusCrashed,
		},
		{
			// Table II "single physical page": distinct frames alias the
			// same cache sets and the timed run takes L1D misses.
			technique: "SinglePhysPage",
			toggle:    func(o *Options) { o.SinglePhysPage = false },
			text:      strided,
			withDefault: StatusOK, withToggled: StatusCacheMiss,
		},
		{
			// Table II "smaller unroll factor": naive 100x unrolling blows
			// the I-cache on large blocks; derived throughput profiles them.
			technique: "DerivedThroughput",
			toggle:    func(o *Options) { o.DerivedThroughput = false },
			text:      big,
			withDefault: StatusOK, withToggled: StatusCacheMiss,
		},
		{
			// The misalignment filter rejects line-crossing accesses; with
			// it off they pass — the failure mode is a silently accepted
			// measurement, not a crash.
			technique: "FilterMisaligned",
			toggle:    func(o *Options) { o.FilterMisaligned = false },
			text:      "mov rax, qword ptr [rbx+0x3c]",
			withDefault: StatusMisaligned, withToggled: StatusOK,
		},
	}

	for _, c := range cases {
		t.Run(c.technique, func(t *testing.T) {
			b := block(t, c.text)
			if r := New(uarch.Haswell(), DefaultOptions()).Profile(b); r.Status != c.withDefault {
				t.Fatalf("full methodology: status %v (err %v), want %v", r.Status, r.Err, c.withDefault)
			}
			opts := DefaultOptions()
			c.toggle(&opts)
			if r := New(uarch.Haswell(), opts).Profile(b); r.Status != c.withToggled {
				t.Fatalf("%s disabled: status %v (err %v), want %v", c.technique, r.Status, r.Err, c.withToggled)
			}
		})
	}

	// DisableSubnormals is quantitative, not a status change: a block that
	// manufactures subnormal products must slow down by around the
	// per-µarch penalty once gradual underflow is allowed (Table II rows
	// 6377.0 vs 65.0).
	t.Run("DisableSubnormals", func(t *testing.T) {
		text := `mov eax, 0x2b8cbccc
			movd xmm15, eax
			movups xmm0, xmmword ptr [rsp]
			mulps xmm0, xmm15`
		b := block(t, text)
		ftz := New(uarch.Haswell(), DefaultOptions()).Profile(b)
		if ftz.Status != StatusOK {
			t.Fatalf("FTZ run: %v (%v)", ftz.Status, ftz.Err)
		}
		opts := DefaultOptions()
		opts.DisableSubnormals = false
		slow := New(uarch.Haswell(), opts).Profile(b)
		if slow.Status != StatusOK {
			t.Fatalf("gradual-underflow run: %v (%v)", slow.Status, slow.Err)
		}
		if slow.Throughput < 2*ftz.Throughput {
			t.Fatalf("subnormal penalty missing: FTZ %.2f vs gradual underflow %.2f",
				ftz.Throughput, slow.Throughput)
		}
	})
}
