package profiler

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bhive/internal/profcache"
	"bhive/internal/uarch"
)

func TestMetricsCountsAndHistogram(t *testing.T) {
	pc, err := profcache.Open(filepath.Join(t.TempDir(), "c.json"))
	if err != nil {
		t.Fatal(err)
	}
	p := New(uarch.Haswell(), DefaultOptions())
	p.Cache = pc
	p.Metrics = new(Metrics)

	ok := block(t, "add rax, rbx")
	crash := block(t, "mov rax, qword ptr [0]")
	p.Profile(ok)
	p.Profile(crash)
	p.Profile(ok) // served from cache

	s := p.Metrics.Snapshot()
	if s.Profiled != 2 || s.CacheHits != 1 {
		t.Fatalf("profiled=%d hits=%d, want 2/1", s.Profiled, s.CacheHits)
	}
	if s.Total() != 3 {
		t.Fatalf("total %d", s.Total())
	}
	if got := s.HitRate(); got < 0.3 || got > 0.4 {
		t.Fatalf("hit rate %v", got)
	}
	if s.ByStatus[StatusOK] != 2 || s.ByStatus[StatusCrashed] != 1 {
		t.Fatalf("status histogram %v", s.ByStatus)
	}
	if h := s.RejectHistogram(); !strings.Contains(h, "crashed=1") {
		t.Fatalf("reject histogram %q", h)
	}

	// Deltas since a snapshot isolate one shard's worth of work.
	p.Profile(crash) // cache hit, still a rejection
	d := p.Metrics.Snapshot().Sub(s)
	if d.Total() != 1 || d.CacheHits != 1 || d.ByStatus[StatusCrashed] != 1 {
		t.Fatalf("delta %+v", d)
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.record(StatusOK, false) // must not panic
	m.RecordPrescreened(StatusCrashed)
	m.RecordCrosscheckMismatch()
	s := m.Snapshot()
	if s.Total() != 0 || s.HitRate() != 0 {
		t.Fatalf("nil metrics snapshot %+v", s)
	}
	if s.RejectHistogram() != "none" {
		t.Fatalf("clean histogram %q", s.RejectHistogram())
	}
}

func TestMetricsPrescreenAndCrosscheck(t *testing.T) {
	m := new(Metrics)
	m.record(StatusOK, false)
	m.RecordPrescreened(StatusCrashed)
	m.RecordPrescreened(StatusMisaligned)
	m.RecordCrosscheckMismatch()

	s := m.Snapshot()
	if s.Prescreened != 2 || s.CrosscheckMismatch != 1 {
		t.Fatalf("prescreened=%d mismatch=%d, want 2/1", s.Prescreened, s.CrosscheckMismatch)
	}
	// Prescreened blocks count toward Total and land their predicted
	// status in the histogram like a dynamic outcome.
	if s.Total() != 3 {
		t.Fatalf("total %d, want 3 (1 profiled + 2 prescreened)", s.Total())
	}
	if s.ByStatus[StatusCrashed] != 1 || s.ByStatus[StatusMisaligned] != 1 {
		t.Fatalf("status histogram %v", s.ByStatus)
	}
	h := s.RejectHistogram()
	for _, want := range []string{"crashed=1", "misaligned=1", "prescreened=2", "cross-mismatch=1"} {
		if !strings.Contains(h, want) {
			t.Fatalf("reject histogram %q missing %q", h, want)
		}
	}

	// Deltas preserve the new counters.
	m.RecordPrescreened(StatusCrashed)
	d := m.Snapshot().Sub(s)
	if d.Prescreened != 1 || d.Total() != 1 || d.CrosscheckMismatch != 0 {
		t.Fatalf("delta %+v", d)
	}

	// A snapshot with only prescreen skips still renders them.
	var only Metrics
	only.RecordPrescreened(StatusCrashed)
	if h := only.Snapshot().RejectHistogram(); !strings.Contains(h, "prescreened=1") {
		t.Fatalf("prescreen-only histogram %q", h)
	}
}

func TestMetricsThroughput(t *testing.T) {
	var nilM *Metrics
	nilM.AddPlanned(10) // must not panic
	if _, ok := nilM.Throughput(); ok {
		t.Fatal("nil metrics reported a throughput")
	}

	m := new(Metrics)
	if _, ok := m.Throughput(); ok {
		t.Fatal("throughput available before any outcome")
	}
	m.AddPlanned(100)
	if _, ok := m.Throughput(); ok {
		t.Fatal("planned work alone must not start the clock")
	}
	for i := 0; i < 4; i++ {
		m.record(StatusOK, i%2 == 0)
	}
	r, ok := m.Throughput()
	if !ok || r.BlocksPerSec <= 0 {
		t.Fatalf("throughput after 4 outcomes: %+v ok=%v", r, ok)
	}
	if r.Eta <= 0 {
		t.Fatalf("96 planned blocks remain but eta=%v", r.Eta)
	}

	// With the plan exhausted (or never registered) the ETA drops to zero
	// while the rate survives.
	done := new(Metrics)
	done.record(StatusOK, false)
	r, ok = done.Throughput()
	if !ok || r.BlocksPerSec <= 0 || r.Eta != 0 {
		t.Fatalf("unplanned run: %+v ok=%v", r, ok)
	}
}

// TestMetricsWarmResumeETA is the regression test for the optimistic-ETA
// bug: a warm-cache resume replays thousands of cache hits in
// milliseconds, and an ETA derived from the overall rate then promises
// the remaining *measured* work at cache speed. The ETA must instead
// track the measured-only rate once any block has actually been measured.
func TestMetricsWarmResumeETA(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	timeNow = func() time.Time { return now }
	defer func() { timeNow = time.Now }()

	m := new(Metrics)
	m.AddPlanned(1000)

	// 500 cache hits land in 100ms — a warm resume replaying old work.
	for i := 0; i < 500; i++ {
		m.record(StatusOK, true)
	}
	now = base.Add(100 * time.Millisecond)

	// One cold block takes a full second to measure.
	m.record(StatusOK, false)
	now = base.Add(1100 * time.Millisecond)

	r, ok := m.Throughput()
	if !ok {
		t.Fatal("no throughput after 501 outcomes")
	}
	// Overall rate is hit-dominated (~455 blocks/s) — fine for display.
	if r.BlocksPerSec < 100 {
		t.Fatalf("overall rate %v, want hit-dominated (>100/s)", r.BlocksPerSec)
	}
	// Measured rate is 1 block/s: that is what the remaining 499 blocks
	// will cost if they miss. The old ETA (remaining/overall) would have
	// been ~1.1s; the fixed ETA must be ~499s.
	if r.MeasuredPerSec <= 0.5 || r.MeasuredPerSec > 1.5 {
		t.Fatalf("measured rate %v, want ~1/s", r.MeasuredPerSec)
	}
	if r.Eta < 300*time.Second {
		t.Fatalf("eta %v still optimistic: want ~499s from the measured rate", r.Eta)
	}

	// A fully warm run (no measurements at all) falls back to the overall
	// rate — there the hits are the workload.
	warm := new(Metrics)
	warm.AddPlanned(100)
	now = base
	for i := 0; i < 50; i++ {
		warm.record(StatusOK, true)
	}
	now = base.Add(time.Second)
	r, ok = warm.Throughput()
	if !ok || r.MeasuredPerSec != 0 {
		t.Fatalf("warm run: %+v ok=%v, want measured rate 0", r, ok)
	}
	if r.Eta <= 0 || r.Eta > 10*time.Second {
		t.Fatalf("warm run eta %v, want ~1s from the overall rate", r.Eta)
	}
}
