package profiler

import (
	"path/filepath"
	"strings"
	"testing"

	"bhive/internal/profcache"
	"bhive/internal/uarch"
)

func TestMetricsCountsAndHistogram(t *testing.T) {
	pc, err := profcache.Open(filepath.Join(t.TempDir(), "c.json"))
	if err != nil {
		t.Fatal(err)
	}
	p := New(uarch.Haswell(), DefaultOptions())
	p.Cache = pc
	p.Metrics = new(Metrics)

	ok := block(t, "add rax, rbx")
	crash := block(t, "mov rax, qword ptr [0]")
	p.Profile(ok)
	p.Profile(crash)
	p.Profile(ok) // served from cache

	s := p.Metrics.Snapshot()
	if s.Profiled != 2 || s.CacheHits != 1 {
		t.Fatalf("profiled=%d hits=%d, want 2/1", s.Profiled, s.CacheHits)
	}
	if s.Total() != 3 {
		t.Fatalf("total %d", s.Total())
	}
	if got := s.HitRate(); got < 0.3 || got > 0.4 {
		t.Fatalf("hit rate %v", got)
	}
	if s.ByStatus[StatusOK] != 2 || s.ByStatus[StatusCrashed] != 1 {
		t.Fatalf("status histogram %v", s.ByStatus)
	}
	if h := s.RejectHistogram(); !strings.Contains(h, "crashed=1") {
		t.Fatalf("reject histogram %q", h)
	}

	// Deltas since a snapshot isolate one shard's worth of work.
	p.Profile(crash) // cache hit, still a rejection
	d := p.Metrics.Snapshot().Sub(s)
	if d.Total() != 1 || d.CacheHits != 1 || d.ByStatus[StatusCrashed] != 1 {
		t.Fatalf("delta %+v", d)
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.record(StatusOK, false) // must not panic
	s := m.Snapshot()
	if s.Total() != 0 || s.HitRate() != 0 {
		t.Fatalf("nil metrics snapshot %+v", s)
	}
	if s.RejectHistogram() != "none" {
		t.Fatalf("clean histogram %q", s.RejectHistogram())
	}
}
