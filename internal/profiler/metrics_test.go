package profiler

import (
	"path/filepath"
	"strings"
	"testing"

	"bhive/internal/profcache"
	"bhive/internal/uarch"
)

func TestMetricsCountsAndHistogram(t *testing.T) {
	pc, err := profcache.Open(filepath.Join(t.TempDir(), "c.json"))
	if err != nil {
		t.Fatal(err)
	}
	p := New(uarch.Haswell(), DefaultOptions())
	p.Cache = pc
	p.Metrics = new(Metrics)

	ok := block(t, "add rax, rbx")
	crash := block(t, "mov rax, qword ptr [0]")
	p.Profile(ok)
	p.Profile(crash)
	p.Profile(ok) // served from cache

	s := p.Metrics.Snapshot()
	if s.Profiled != 2 || s.CacheHits != 1 {
		t.Fatalf("profiled=%d hits=%d, want 2/1", s.Profiled, s.CacheHits)
	}
	if s.Total() != 3 {
		t.Fatalf("total %d", s.Total())
	}
	if got := s.HitRate(); got < 0.3 || got > 0.4 {
		t.Fatalf("hit rate %v", got)
	}
	if s.ByStatus[StatusOK] != 2 || s.ByStatus[StatusCrashed] != 1 {
		t.Fatalf("status histogram %v", s.ByStatus)
	}
	if h := s.RejectHistogram(); !strings.Contains(h, "crashed=1") {
		t.Fatalf("reject histogram %q", h)
	}

	// Deltas since a snapshot isolate one shard's worth of work.
	p.Profile(crash) // cache hit, still a rejection
	d := p.Metrics.Snapshot().Sub(s)
	if d.Total() != 1 || d.CacheHits != 1 || d.ByStatus[StatusCrashed] != 1 {
		t.Fatalf("delta %+v", d)
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.record(StatusOK, false) // must not panic
	m.RecordPrescreened(StatusCrashed)
	m.RecordCrosscheckMismatch()
	s := m.Snapshot()
	if s.Total() != 0 || s.HitRate() != 0 {
		t.Fatalf("nil metrics snapshot %+v", s)
	}
	if s.RejectHistogram() != "none" {
		t.Fatalf("clean histogram %q", s.RejectHistogram())
	}
}

func TestMetricsPrescreenAndCrosscheck(t *testing.T) {
	m := new(Metrics)
	m.record(StatusOK, false)
	m.RecordPrescreened(StatusCrashed)
	m.RecordPrescreened(StatusMisaligned)
	m.RecordCrosscheckMismatch()

	s := m.Snapshot()
	if s.Prescreened != 2 || s.CrosscheckMismatch != 1 {
		t.Fatalf("prescreened=%d mismatch=%d, want 2/1", s.Prescreened, s.CrosscheckMismatch)
	}
	// Prescreened blocks count toward Total and land their predicted
	// status in the histogram like a dynamic outcome.
	if s.Total() != 3 {
		t.Fatalf("total %d, want 3 (1 profiled + 2 prescreened)", s.Total())
	}
	if s.ByStatus[StatusCrashed] != 1 || s.ByStatus[StatusMisaligned] != 1 {
		t.Fatalf("status histogram %v", s.ByStatus)
	}
	h := s.RejectHistogram()
	for _, want := range []string{"crashed=1", "misaligned=1", "prescreened=2", "cross-mismatch=1"} {
		if !strings.Contains(h, want) {
			t.Fatalf("reject histogram %q missing %q", h, want)
		}
	}

	// Deltas preserve the new counters.
	m.RecordPrescreened(StatusCrashed)
	d := m.Snapshot().Sub(s)
	if d.Prescreened != 1 || d.Total() != 1 || d.CrosscheckMismatch != 0 {
		t.Fatalf("delta %+v", d)
	}

	// A snapshot with only prescreen skips still renders them.
	var only Metrics
	only.RecordPrescreened(StatusCrashed)
	if h := only.Snapshot().RejectHistogram(); !strings.Contains(h, "prescreened=1") {
		t.Fatalf("prescreen-only histogram %q", h)
	}
}

func TestMetricsThroughput(t *testing.T) {
	var nilM *Metrics
	nilM.AddPlanned(10) // must not panic
	if _, _, ok := nilM.Throughput(); ok {
		t.Fatal("nil metrics reported a throughput")
	}

	m := new(Metrics)
	if _, _, ok := m.Throughput(); ok {
		t.Fatal("throughput available before any outcome")
	}
	m.AddPlanned(100)
	if _, _, ok := m.Throughput(); ok {
		t.Fatal("planned work alone must not start the clock")
	}
	for i := 0; i < 4; i++ {
		m.record(StatusOK, i%2 == 0)
	}
	rate, eta, ok := m.Throughput()
	if !ok || rate <= 0 {
		t.Fatalf("throughput after 4 outcomes: rate=%v ok=%v", rate, ok)
	}
	if eta <= 0 {
		t.Fatalf("96 planned blocks remain but eta=%v", eta)
	}

	// With the plan exhausted (or never registered) the ETA drops to zero
	// while the rate survives.
	done := new(Metrics)
	done.record(StatusOK, false)
	rate, eta, ok = done.Throughput()
	if !ok || rate <= 0 || eta != 0 {
		t.Fatalf("unplanned run: rate=%v eta=%v ok=%v", rate, eta, ok)
	}
}
