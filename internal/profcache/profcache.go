// Package profcache is the persistent on-disk profile cache: it maps
// (block machine code, microarchitecture, profiling options, block seed)
// to the profiling result, so repeated evaluation runs over an unchanged
// corpus skip re-profiling entirely. The cache is a single JSON file
// carrying a format/semantics version; a version bump invalidates every
// persisted entry (the file is simply ignored and rewritten).
package profcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"bhive/internal/pipeline"
)

// Version tags the profiling semantics. Bump it whenever the profiler or
// the machine model changes in a way that can alter results: stale caches
// are then discarded wholesale on Open.
const Version = 1

// Entry is one persisted profiling result.
type Entry struct {
	Status       int
	Throughput   float64
	ErrText      string `json:",omitempty"`
	UnrollHi     int
	UnrollLo     int
	PagesMapped  int
	CleanSamples int
	Counters     pipeline.Counters
}

// fileFormat is the on-disk representation.
type fileFormat struct {
	Version int
	Entries map[string]Entry
}

// Cache is a thread-safe persistent profile cache. Save snapshots the
// entries under the lock but performs the disk write unlocked, so
// long-running callers (the evaluation server flushes the shared cache
// while other jobs keep profiling) never stall Get/Put behind I/O.
type Cache struct {
	path string

	// saveMu serializes Save calls: two concurrent Saves would otherwise
	// race their renames, and an older snapshot winning the rename would
	// roll back entries the newer one had already persisted.
	saveMu sync.Mutex

	mu      sync.Mutex
	entries map[string]Entry
	dirty   bool
	gen     uint64 // bumped by every mutating Put; gates clearing dirty
}

// Open loads the cache at path. A missing file or a version mismatch
// yields an empty cache bound to the same path; corrupt files are an
// error so silent cache loss is visible.
func Open(path string) (*Cache, error) {
	c := &Cache{path: path, entries: make(map[string]Entry)}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("profcache: %w", err)
	}
	var f fileFormat
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("profcache: %s: %w", path, err)
	}
	if f.Version != Version {
		// Version bump: discard persisted entries, start fresh.
		return c, nil
	}
	if f.Entries != nil {
		c.entries = f.Entries
	}
	return c, nil
}

// Key derives the cache key for one profiling attempt. optsFingerprint
// must encode every Options field (any change must miss the cache); seed
// is the content-derived block seed.
func Key(blockHex, uarchName, optsFingerprint string, seed int64) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s|%s|%s|%d",
		Version, blockHex, uarchName, optsFingerprint, seed)))
	return hex.EncodeToString(h[:])
}

// Get returns the cached entry for key.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

// Put records an entry.
func (c *Cache) Put(key string, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok && old == e {
		return
	}
	c.entries[key] = e
	c.dirty = true
	c.gen++
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Save writes the cache back to its path atomically (temp file + rename).
// It is a no-op when nothing changed since Open/the last Save. The write
// happens outside the entry lock, so concurrent Get/Put never block on
// disk I/O; entries Put during the write window stay dirty (the snapshot
// predates them) and are picked up by the next Save instead of being
// silently dropped.
func (c *Cache) Save() error {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()

	c.mu.Lock()
	if !c.dirty {
		c.mu.Unlock()
		return nil
	}
	snap := make(map[string]Entry, len(c.entries))
	for k, v := range c.entries {
		snap[k] = v
	}
	genAtSnap := c.gen
	c.mu.Unlock()

	raw, err := json.Marshal(fileFormat{Version: Version, Entries: snap})
	if err != nil {
		return fmt.Errorf("profcache: %w", err)
	}
	dir := filepath.Dir(c.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("profcache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".profcache-*")
	if err != nil {
		return fmt.Errorf("profcache: %w", err)
	}
	// Sync before rename: a crash right after Save must leave either the
	// old file or the complete new one, never a short write behind the
	// final name.
	_, werr := tmp.Write(raw)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("profcache: writing %s: %v/%v/%v", c.path, werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("profcache: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	c.mu.Lock()
	// Only what was in the snapshot is on disk. A Put that landed during
	// the write bumped gen past genAtSnap; leaving dirty set then makes
	// the next Save persist it.
	if c.gen == genAtSnap {
		c.dirty = false
	}
	c.mu.Unlock()
	return nil
}

// syncDir makes the just-renamed directory entry durable: rename alone
// only updates the entry in memory, so a crash shortly after Save could
// otherwise roll the whole cache file back to its previous contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("profcache: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("profcache: syncing %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("profcache: %w", cerr)
	}
	return nil
}
