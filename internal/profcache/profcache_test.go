package profcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bhive/internal/pipeline"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("fresh cache has %d entries", c.Len())
	}

	e := Entry{
		Status:       0,
		Throughput:   1.25,
		UnrollHi:     100,
		UnrollLo:     50,
		PagesMapped:  2,
		CleanSamples: 16,
		Counters:     pipeline.Counters{Cycles: 125, Instructions: 200},
	}
	k := Key("4801d8", "haswell", "opts-v1", 42)
	c.Put(k, e)
	if got, ok := c.Get(k); !ok || got != e {
		t.Fatalf("Get after Put = %+v, %v", got, ok)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get(k); !ok || got != e {
		t.Fatalf("Get after reload = %+v, %v", got, ok)
	}
}

func TestSaveIsNoOpWhenClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c, _ := Open(path)
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Save of an untouched cache wrote a file")
	}
	c.Put("k", Entry{Throughput: 1})
	c.Put("k", Entry{Throughput: 1}) // identical re-Put keeps it clean
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	fi1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil { // second Save: nothing dirty
		t.Fatal(err)
	}
	fi2, _ := os.Stat(path)
	if !fi1.ModTime().Equal(fi2.ModTime()) {
		t.Error("clean Save rewrote the file")
	}
}

// TestConcurrentPutDuringSave hammers Put from several goroutines while
// Save runs repeatedly. The old Save held the entry lock across the disk
// write (stalling every Put behind I/O); the obvious fix — snapshotting
// and writing unlocked — could clear the dirty flag for entries the
// snapshot never saw, silently dropping them from disk forever. The
// invariant: once all Puts have finished, one final Save persists every
// entry. Run under -race (CI does) this also proves the snapshot itself
// is data-race free.
func TestConcurrentPutDuringSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Saver: flush continuously while writers are active.
	var saverWg sync.WaitGroup
	saverWg.Add(1)
	go func() {
		defer saverWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := c.Save(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := fmt.Sprintf("g%d-i%d", g, i)
				c.Put(k, Entry{Throughput: float64(g*perG + i)})
				if got, ok := c.Get(k); !ok || got.Throughput != float64(g*perG+i) {
					t.Errorf("Get(%s) = %+v, %v", k, got, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	saverWg.Wait()

	// All Puts are done: the final Save must persist every entry, even the
	// ones that landed inside an earlier Save's snapshot/write window.
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c2.Len(), goroutines*perG; got != want {
		t.Fatalf("reloaded cache has %d entries, want %d: entries Put during Save were dropped", got, want)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			k := fmt.Sprintf("g%d-i%d", g, i)
			if _, ok := c2.Get(k); !ok {
				t.Fatalf("entry %s lost", k)
			}
		}
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	raw, _ := json.Marshal(fileFormat{
		Version: Version + 1,
		Entries: map[string]Entry{"stale": {Throughput: 9}},
	})
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("version-mismatched cache served %d stale entries", c.Len())
	}
}

func TestCorruptFileIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open of a corrupt cache did not fail")
	}
}

func TestKeySensitivity(t *testing.T) {
	base := Key("4801d8", "haswell", "opts", 1)
	for name, k := range map[string]string{
		"block": Key("4801d9", "haswell", "opts", 1),
		"uarch": Key("4801d8", "skylake", "opts", 1),
		"opts":  Key("4801d8", "haswell", "opts2", 1),
		"seed":  Key("4801d8", "haswell", "opts", 2),
	} {
		if k == base {
			t.Errorf("changing %s does not change the key", name)
		}
	}
}
