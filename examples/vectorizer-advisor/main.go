// vectorizer-advisor demonstrates the downstream use case the paper's
// introduction motivates: an automatic vectorizer deciding between a
// scalar and a vectorized loop body with a cost model. An inaccurate model
// (here: the OSACA-like analyzer, which misbinds vector ports) picks the
// wrong kernel; the measurement framework provides the ground truth to
// validate the decision.
package main

import (
	"fmt"
	"log"

	"bhive"
)

// Scalar dot-product step: 4 elements per iteration, scalar FP.
const scalarBody = `
	movss xmm0, dword ptr [rdi]
	mulss xmm0, dword ptr [rsi]
	addss xmm8, xmm0
	movss xmm1, dword ptr [rdi+4]
	mulss xmm1, dword ptr [rsi+4]
	addss xmm8, xmm1
	movss xmm2, dword ptr [rdi+8]
	mulss xmm2, dword ptr [rsi+8]
	addss xmm8, xmm2
	movss xmm3, dword ptr [rdi+12]
	mulss xmm3, dword ptr [rsi+12]
	addss xmm8, xmm3
	add rdi, 16
	add rsi, 16`

// Vectorized body: the same 4 elements with one packed multiply-add.
const vectorBody = `
	movups xmm0, xmmword ptr [rdi]
	movups xmm1, xmmword ptr [rsi]
	mulps xmm0, xmm1
	addps xmm8, xmm0
	add rdi, 16
	add rsi, 16`

func main() {
	scalar, err := bhive.ParseBlock(scalarBody, bhive.SyntaxIntel)
	if err != nil {
		log.Fatal(err)
	}
	vector, err := bhive.ParseBlock(vectorBody, bhive.SyntaxIntel)
	if err != nil {
		log.Fatal(err)
	}

	ms, err := bhive.Models("haswell")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cycles per 4 elements (lower is better):")
	fmt.Printf("%-12s %10s %10s %10s\n", "", "scalar", "vector", "decision")
	for _, m := range ms {
		s, errS := m.Predict(scalar)
		v, errV := m.Predict(vector)
		if errS != nil || errV != nil {
			fmt.Printf("%-12s %10s %10s %10s\n", m.Name(), "-", "-", "n/a")
			continue
		}
		decision := "vectorize"
		if s <= v {
			decision = "stay scalar"
		}
		fmt.Printf("%-12s %10.2f %10.2f %10s\n", m.Name(), s, v, decision)
	}

	// Ground truth from the measurement framework.
	rs, err := bhive.Profile("haswell", scalar)
	if err != nil || rs.Status != bhive.StatusOK {
		log.Fatalf("scalar: %v %v", rs.Status, err)
	}
	rv, err := bhive.Profile("haswell", vector)
	if err != nil || rv.Status != bhive.StatusOK {
		log.Fatalf("vector: %v %v", rv.Status, err)
	}
	decision := "vectorize"
	if rs.Throughput <= rv.Throughput {
		decision = "stay scalar"
	}
	fmt.Printf("%-12s %10.2f %10.2f %10s\n", "measured", rs.Throughput, rv.Throughput, decision)
	fmt.Println()
	fmt.Printf("speedup from vectorizing: %.2fx\n", rs.Throughput/rv.Throughput)
	fmt.Println("a model that misjudges either side flips the vectorizer's decision —")
	fmt.Println("the kind of misoptimization the paper's benchmark suite exists to catch.")
}
