// Quickstart: profile a basic block on the simulated Haswell and compare
// the measurement against the analytical throughput models.
package main

import (
	"fmt"
	"log"

	"bhive"
)

func main() {
	// The paper's unsigned-division case study: bottlenecked by a 32-bit
	// divide that the Intel manual says costs 20-26 cycles.
	block, err := bhive.ParseBlock(`
		xor %edx, %edx
		div %ecx
		test %edx, %edx`, bhive.SyntaxATT)
	if err != nil {
		log.Fatal(err)
	}

	res, err := bhive.Profile("haswell", block)
	if err != nil {
		log.Fatal(err)
	}
	if res.Status != bhive.StatusOK {
		log.Fatalf("profiling failed: %v (%v)", res.Status, res.Err)
	}
	fmt.Printf("measured: %6.2f cycles/iteration (paper: 21.62)\n", res.Throughput)

	ms, err := bhive.Models("haswell")
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range ms {
		p, err := m.Predict(block)
		if err != nil {
			fmt.Printf("%-9s      - (%v)\n", m.Name(), err)
			continue
		}
		fmt.Printf("%-9s %6.2f cycles/iteration\n", m.Name(), p)
	}
	fmt.Println()
	fmt.Println("IACA and llvm-mca predict ~98 cycles: their tables confuse the")
	fmt.Println("32-bit divide with the 64-bit form — the paper's first case study.")
}
