// model-validation runs a miniature of the paper's headline experiment
// through the public API: generate a corpus, profile it on every
// microarchitecture, and report each model's average error (Table V).
package main

import (
	"fmt"
	"log"

	"bhive"
	"bhive/internal/stats"
)

func main() {
	const scale = 0.002 // ~700 blocks; raise for tighter numbers
	recs := bhive.GenerateCorpus(scale, 7)
	fmt.Printf("corpus: %d blocks (scale %g)\n\n", len(recs), scale)

	for _, arch := range bhive.Microarchitectures() {
		ms, err := bhive.Models(arch)
		if err != nil {
			log.Fatal(err)
		}
		errs := make(map[string][]float64)
		profiled := 0
		for i := range recs {
			res, err := bhive.Profile(arch, recs[i].Block)
			if err != nil {
				log.Fatal(err)
			}
			if res.Status != bhive.StatusOK || res.Throughput <= 0 {
				continue
			}
			profiled++
			for _, m := range ms {
				p, err := m.Predict(recs[i].Block)
				if err != nil {
					continue
				}
				errs[m.Name()] = append(errs[m.Name()], stats.RelError(p, res.Throughput))
			}
		}
		fmt.Printf("%s (%d blocks profiled):\n", arch, profiled)
		for _, m := range ms {
			fmt.Printf("  %-9s average error %.4f\n", m.Name(), stats.Mean(errs[m.Name()]))
		}
		fmt.Println()
	}
	fmt.Println("paper (Table V): IACA ~.16-.18, llvm-mca ~.18-.23 (worst on Skylake),")
	fmt.Println("OSACA ~.33-.39; the learned Ithemal model (see cmd/bhive-train) ~.12.")
}
