// gzip-crc walks through the paper's motivating example: the inner loop of
// Gzip's updcrc cannot be executed outside its application (its pointer
// values index a lookup table that does not exist), so naive measurement
// crashes. The BHive monitor intercepts the page faults, maps every page
// the block touches onto one physical page, and re-measures — after which
// the block profiles cleanly and every memory access hits the L1 cache.
package main

import (
	"fmt"
	"log"

	"bhive"
)

const crc = `add $1, %rdi
mov %edx, %eax
shr $8, %rdx
xorb -1(%rdi), %al
movzx %al, %eax
xor 0x4110a(, %rax, 8), %rdx
cmp %rcx, %rdi`

func main() {
	block, err := bhive.ParseBlock(crc, bhive.SyntaxATT)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The Gzip CRC inner loop:")
	fmt.Println(block)

	// 1. The Agner-script baseline: unmodified execution context.
	baseline, err := bhive.ProfileWith("haswell", block, bhive.BaselineOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. baseline measurement:  %v (%v)\n", baseline.Status, baseline.Err)

	// 2. The full methodology: the monitor maps the faulting pages.
	opts := bhive.DefaultOptions()
	opts.FilterMisaligned = false // the table walk occasionally splits a line
	full, err := bhive.ProfileWith("haswell", block, opts)
	if err != nil {
		log.Fatal(err)
	}
	if full.Status != bhive.StatusOK {
		log.Fatalf("unexpected: %v (%v)", full.Status, full.Err)
	}
	fmt.Printf("2. with page mapping:     %.2f cycles/iteration (paper: 8.25)\n", full.Throughput)
	fmt.Printf("   pages mapped by the monitor: %d\n", full.PagesMapped)
	fmt.Printf("   L1 data misses in the timed run: %d\n",
		full.Counters.L1DReadMisses+full.Counters.L1DWriteMisses)

	// 3. The models: IACA hoists the independent xorb load and gets it
	// right; llvm-mca fuses the load with the xor and overpredicts; OSACA's
	// parser rejects the 8-bit memory form outright.
	fmt.Println("3. model predictions:")
	ms, _ := bhive.Models("haswell")
	for _, m := range ms {
		p, err := m.Predict(block)
		if err != nil {
			fmt.Printf("   %-9s -      (%v)\n", m.Name(), err)
			continue
		}
		fmt.Printf("   %-9s %.2f\n", m.Name(), p)
	}
}
