#!/usr/bin/env bash
# Coverage gate: total statement coverage over ./internal/... must not
# drop below the committed baseline (scripts/coverage_baseline.txt).
#
# The baseline is a floor, not a target — raise it when a PR durably
# lifts coverage (run this script and copy the printed total), never
# lower it to make a PR pass.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=$(cat scripts/coverage_baseline.txt)
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -count=1 -coverprofile="$profile" ./internal/...
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')

echo "total coverage: ${total}% (baseline: ${baseline}%)"
if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t < b) }'; then
  echo "FAIL: coverage ${total}% fell below the baseline ${baseline}%" >&2
  exit 1
fi
