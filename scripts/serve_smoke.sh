#!/usr/bin/env bash
# End-to-end smoke of the evaluation service: build and start bhive-serve,
# drive it over HTTP, and hold its results against the repo's goldens.
#
#   1. A generated-corpus job at the golden configuration (table5, scale
#      0.02, seed 7) must render byte-identically to the recorded golden
#      internal/harness/testdata/table5_seed7_scale002.golden.
#   2. An API-submitted corpus (the blocklint example corpus) must agree
#      byte-for-byte with the batch CLI (bhive-eval) on the same input.
#
# Used by CI (.github/workflows/ci.yml, job serve-smoke) and runnable
# locally: ./scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-8423}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "smoke: building bhive-serve"
go build -o "$WORK/bhive-serve" ./cmd/bhive-serve
"$WORK/bhive-serve" -addr "127.0.0.1:$PORT" -data "$WORK/state" \
  -profile-cache "$WORK/profiles.json" &
SRV_PID=$!

for _ in $(seq 1 100); do
  curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/v1/healthz" >/dev/null

# submit_and_wait BODY -> job id (BODY may be @file)
submit_and_wait() {
  local body="$1" id state
  id=$(curl -fsS "$BASE/v1/evaluate" -d "$body" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
  for _ in $(seq 1 600); do
    state=$(curl -fsS "$BASE/v1/jobs/$id" \
      | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    case "$state" in
      done) echo "$id"; return 0 ;;
      failed)
        echo "smoke: job $id failed:" >&2
        curl -fsS "$BASE/v1/jobs/$id" >&2
        return 1 ;;
    esac
    sleep 1
  done
  echo "smoke: timed out waiting for job $id" >&2
  return 1
}

result_text() { # ID -> rendered text of the first experiment
  curl -fsS "$BASE/v1/jobs/$1/result" \
    | python3 -c 'import json,sys; sys.stdout.write(json.load(sys.stdin)["experiments"][0]["text"])'
}

echo "smoke: golden-configuration job (table5, scale 0.02, seed 7)"
ID=$(submit_and_wait '{"experiments":["table5"],"scale":0.02,"seed":7}')
result_text "$ID" > "$WORK/table5.txt"
diff -u internal/harness/testdata/table5_seed7_scale002.golden "$WORK/table5.txt"
echo "smoke: table5 matches the golden"

echo "smoke: SSE replay for job $ID"
curl -fsS -N --max-time 10 "$BASE/v1/jobs/$ID/events" > "$WORK/events.txt" || true
grep -q "shard" "$WORK/events.txt"
grep -q "^event: done" "$WORK/events.txt"
echo "smoke: SSE stream replayed per-shard progress and terminated"

echo "smoke: API-submitted corpus (blocklint example corpus)"
# The raw example corpus ends in deliberately-undecodable rows (it is a
# lint fixture); submitting it must be rejected with the offending line.
python3 - > "$WORK/bad_req.json" <<'EOF'
import json
with open("internal/blocklint/testdata/example_corpus.csv") as f:
    csv = f.read()
print(json.dumps({"experiments": ["table5"], "corpus_csv": csv}))
EOF
curl -sS "$BASE/v1/evaluate" -d "@$WORK/bad_req.json" > "$WORK/bad_resp.json"
grep -q '"error"' "$WORK/bad_resp.json"
grep -q "line 742" "$WORK/bad_resp.json"
echo "smoke: undecodable corpus rejected with the offending line number"

# The decodable subset (everything but the pathological lint rows) must
# evaluate identically through the service and the batch CLI.
grep -v '^pathological,' internal/blocklint/testdata/example_corpus.csv \
  > "$WORK/example_corpus_ok.csv"
python3 - "$WORK/example_corpus_ok.csv" > "$WORK/corpus_req.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    csv = f.read()
print(json.dumps({"experiments": ["table5"], "shard_size": 128,
                  "scale": 0.002, "corpus_csv": csv}))
EOF
ID2=$(submit_and_wait "@$WORK/corpus_req.json")
result_text "$ID2" > "$WORK/srv_corpus_table5.txt"
go run ./cmd/bhive-eval -exp table5 -scale 0.002 \
  -corpus "$WORK/example_corpus_ok.csv" > "$WORK/cli_corpus_table5.txt"
diff -u "$WORK/cli_corpus_table5.txt" "$WORK/srv_corpus_table5.txt"
echo "smoke: service output matches the batch CLI on the same corpus"

echo "smoke: graceful shutdown"
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""
echo "smoke: OK"
