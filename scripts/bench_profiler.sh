#!/bin/sh
# Runs the profiling hot-path micro-benchmark and emits BENCH_profiler.json
# with per-block cost (the benchmark profiles blocksPerOp blocks per op).
#
# Usage: scripts/bench_profiler.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_profiler.json}"

raw="$(go test -bench BenchmarkProfileHotPath -benchmem -run '^$' -benchtime 2s . | tee /dev/stderr)"

echo "$raw" | awk -v out="$out" '
/^BenchmarkProfileHotPath/ {
    ns = ""; allocs = ""; blocks = 1
    for (i = 1; i <= NF; i++) {
        if ($(i+1) == "ns/op")       ns = $i
        if ($(i+1) == "allocs/op")   allocs = $i
        if ($(i+1) == "blocksPerOp") blocks = $i
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkProfileHotPath\",\n" >> out
    printf "  \"ns_per_block\": %.0f,\n", ns / blocks >> out
    printf "  \"allocs_per_block\": %.1f,\n", allocs / blocks >> out
    printf "  \"blocks_per_op\": %d,\n", blocks >> out
    printf "  \"seed_baseline\": {\"ns_per_block\": 470958, \"allocs_per_block\": 4704.5},\n" >> out
    printf "  \"speedup_vs_seed\": %.2f,\n", 470958 / (ns / blocks) >> out
    printf "  \"alloc_reduction_vs_seed\": %.1f\n", 4704.5 / (allocs / blocks) >> out
    printf "}\n" >> out
}
'
cat "$out"
