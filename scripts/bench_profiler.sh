#!/bin/sh
# Profiling hot-path micro-benchmark driver (the benchmark profiles
# blocksPerOp blocks per op; all numbers below are per block).
#
# Usage:
#   scripts/bench_profiler.sh [output.json]
#       Refresh mode: run the benchmark and rewrite output.json (default
#       BENCH_profiler.json). The previous committed entry is preserved in
#       the new file as "previous", so the committed history forms a chain
#       back to the seed baseline.
#   scripts/bench_profiler.sh check
#       Check mode (CI perf smoke): run the benchmark and fail when
#       ns_per_block regresses more than MAX_REGRESSION_PCT (default 15)
#       over the committed BENCH_profiler.json. Nothing is written.
set -eu

cd "$(dirname "$0")/.."

mode=refresh
out="BENCH_profiler.json"
case "${1:-}" in
check) mode=check ;;
"") ;;
*) out="$1" ;;
esac
max_pct="${MAX_REGRESSION_PCT:-15}"

raw="$(go test -bench BenchmarkProfileHotPath -benchmem -run '^$' -benchtime 2s . | tee /dev/stderr)"

# Per-block cost of this run.
set -- $(echo "$raw" | awk '
/^BenchmarkProfileHotPath/ {
    ns = ""; allocs = ""; blocks = 1
    for (i = 1; i <= NF; i++) {
        if ($(i+1) == "ns/op")       ns = $i
        if ($(i+1) == "allocs/op")   allocs = $i
        if ($(i+1) == "blocksPerOp") blocks = $i
    }
    printf "%.0f %.1f %d\n", ns / blocks, allocs / blocks, blocks
}')
ns_block="$1"; allocs_block="$2"; blocks="$3"

committed_ns="$(awk -F'[:,]' '/"ns_per_block"/ { gsub(/ /, "", $2); print $2; exit }' BENCH_profiler.json)"
committed_allocs="$(awk -F'[:,]' '/"allocs_per_block"/ { gsub(/ /, "", $2); print $2; exit }' BENCH_profiler.json)"

if [ "$mode" = "check" ]; then
    awk -v now="$ns_block" -v base="$committed_ns" -v max="$max_pct" 'BEGIN {
        pct = 100 * (now - base) / base
        printf "perf check: %d ns/block vs committed %d (%+.1f%%, limit +%d%%)\n", now, base, pct, max
        exit pct > max ? 1 : 0
    }' || {
        echo "perf check FAILED: ns/block regressed more than ${max_pct}% over BENCH_profiler.json" >&2
        exit 1
    }
    exit 0
fi

awk -v ns="$ns_block" -v allocs="$allocs_block" -v blocks="$blocks" \
    -v prev_ns="$committed_ns" -v prev_allocs="$committed_allocs" -v out="$out" 'BEGIN {
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkProfileHotPath\",\n" >> out
    printf "  \"ns_per_block\": %d,\n", ns >> out
    printf "  \"allocs_per_block\": %.1f,\n", allocs >> out
    printf "  \"blocks_per_op\": %d,\n", blocks >> out
    printf "  \"previous\": {\"ns_per_block\": %d, \"allocs_per_block\": %.1f},\n", prev_ns, prev_allocs >> out
    printf "  \"seed_baseline\": {\"ns_per_block\": 470958, \"allocs_per_block\": 4704.5},\n" >> out
    printf "  \"speedup_vs_seed\": %.2f,\n", 470958 / ns >> out
    printf "  \"alloc_reduction_vs_seed\": %.1f\n", 4704.5 / allocs >> out
    printf "}\n" >> out
}'
cat "$out"
