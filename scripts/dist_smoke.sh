#!/usr/bin/env bash
# End-to-end smoke of distributed evaluation: a coordinator (bhive-serve
# -dist) plus real bhive-worker processes over HTTP.
#
#   1. Submit a corpus job to the coordinator; with no worker attached it
#      must park in the fill (dist status shows pending shards).
#   2. Start worker 1, let it deliver a few shards, then SIGKILL it
#      mid-job: its outstanding lease must expire and re-issue.
#   3. Start worker 2; the job must converge to done.
#   4. The distributed result must be byte-identical to the batch CLI
#      (bhive-eval) on the same corpus — the paper-replication guarantee
#      extended across worker death.
#
# Used by CI (.github/workflows/ci.yml, job dist-smoke) and runnable
# locally: ./scripts/dist_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-8427}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SRV_PID=""
W1_PID=""
W2_PID=""
cleanup() {
  for pid in "$SRV_PID" "$W1_PID" "$W2_PID"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "dist-smoke: building bhive-serve and bhive-worker"
go build -o "$WORK/bhive-serve" ./cmd/bhive-serve
go build -o "$WORK/bhive-worker" ./cmd/bhive-worker

# Short lease TTL so the killed worker's shards re-issue quickly.
"$WORK/bhive-serve" -addr "127.0.0.1:$PORT" -data "$WORK/state" \
  -dist -dist-lease-ttl 3s -dist-shards-per-lease 1 &
SRV_PID=$!

for _ in $(seq 1 100); do
  curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/v1/healthz" >/dev/null

echo "dist-smoke: submitting corpus job (decodable blocklint subset, small shards)"
grep -v '^pathological,' internal/blocklint/testdata/example_corpus.csv \
  > "$WORK/corpus.csv"
python3 - "$WORK/corpus.csv" > "$WORK/req.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    csv = f.read()
print(json.dumps({"experiments": ["table5"], "shard_size": 16,
                  "scale": 0.002, "corpus_csv": csv}))
EOF
ID=$(curl -fsS "$BASE/v1/evaluate" -d "@$WORK/req.json" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')

dist_field() { # FIELD -> value from /v1/dist/status
  curl -fsS "$BASE/v1/dist/status" \
    | python3 -c "import json,sys; print(json.load(sys.stdin)[\"$1\"])"
}

echo "dist-smoke: waiting for the fill to park (no workers yet)"
for _ in $(seq 1 100); do
  [ "$(dist_field jobs 2>/dev/null || echo 0)" = "1" ] && break
  sleep 0.2
done
PENDING=$(dist_field pending_shards)
[ "$PENDING" -gt 0 ] || { echo "dist-smoke: no pending shards" >&2; exit 1; }
echo "dist-smoke: $PENDING shards pending"

echo "dist-smoke: starting worker 1"
"$WORK/bhive-worker" -coordinator "$BASE" -name w1 -poll 100ms &
W1_PID=$!

# Let it make real progress, then kill it hard mid-job.
for _ in $(seq 1 300); do
  DONE=$(dist_field done_shards)
  [ "$DONE" -ge 2 ] && break
  sleep 0.2
done
[ "$DONE" -ge 2 ] || { echo "dist-smoke: worker 1 made no progress" >&2; exit 1; }
kill -KILL "$W1_PID" 2>/dev/null || true
wait "$W1_PID" 2>/dev/null || true
W1_PID=""
echo "dist-smoke: killed worker 1 after $DONE shards"

echo "dist-smoke: starting worker 2"
"$WORK/bhive-worker" -coordinator "$BASE" -name w2 -poll 100ms &
W2_PID=$!

echo "dist-smoke: waiting for convergence"
for _ in $(seq 1 600); do
  STATE=$(curl -fsS "$BASE/v1/jobs/$ID" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  case "$STATE" in
    done) break ;;
    failed)
      echo "dist-smoke: job failed:" >&2
      curl -fsS "$BASE/v1/jobs/$ID" >&2
      exit 1 ;;
  esac
  sleep 1
done
[ "$STATE" = "done" ] || { echo "dist-smoke: timed out" >&2; exit 1; }

REISSUED=$(dist_field reissued_shards)
echo "dist-smoke: converged ($REISSUED shards re-issued after the kill)"

echo "dist-smoke: comparing against the batch CLI"
curl -fsS "$BASE/v1/jobs/$ID/result" \
  | python3 -c 'import json,sys; sys.stdout.write(json.load(sys.stdin)["experiments"][0]["text"])' \
  > "$WORK/dist_table5.txt"
go run ./cmd/bhive-eval -exp table5 -scale 0.002 \
  -corpus "$WORK/corpus.csv" > "$WORK/cli_table5.txt"
diff -u "$WORK/cli_table5.txt" "$WORK/dist_table5.txt"
echo "dist-smoke: distributed result is byte-identical to the single-node CLI"

echo "dist-smoke: the coordinator did not profile locally"
PROFILED=$(curl -fsS "$BASE/v1/jobs/$ID" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin).get("metrics",{}).get("profiled",0))')
[ "$PROFILED" = "0" ] || { echo "dist-smoke: coordinator profiled $PROFILED blocks" >&2; exit 1; }

echo "dist-smoke: graceful shutdown"
kill -TERM "$W2_PID" 2>/dev/null || true
wait "$W2_PID" 2>/dev/null || true
W2_PID=""
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""
echo "dist-smoke: OK"
