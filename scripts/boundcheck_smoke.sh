#!/usr/bin/env bash
# Sim-vs-bounds crosscheck smoke: run `bhive-eval -exp boundcheck` over
# the decodable subset of the blocklint fixture corpus on every modeled
# microarchitecture (including Ice Lake, which the paper tables omit) and
# require zero violations.
#
# The bounds are sound by construction (lower·n ≤ cycles(n) ≤ upper·n at
# the measured unroll factor n), so ANY violation is a simulator or
# bound-analysis bug — the tolerance is zero, not a threshold.
#
# Used by CI (.github/workflows/ci.yml, job boundcheck-smoke) and
# runnable locally: ./scripts/boundcheck_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# The raw fixture ends in deliberately-undecodable lint rows; strip them
# the same way serve_smoke.sh does.
grep -v '^pathological,' internal/blocklint/testdata/example_corpus.csv \
  > "$WORK/corpus.csv"

echo "boundcheck-smoke: crosschecking bounds against the simulator"
go run ./cmd/bhive-eval -exp boundcheck -corpus "$WORK/corpus.csv" \
  | tee "$WORK/boundcheck.txt"

grep -q "total violations: 0" "$WORK/boundcheck.txt" || {
  echo "boundcheck-smoke: FAIL: bound violations found (see table above)" >&2
  exit 1
}
echo "boundcheck-smoke: OK (zero violations on all microarchitectures)"
