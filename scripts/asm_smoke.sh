#!/usr/bin/env bash
# Assembly front-door smoke: the same corpus submitted as an assembly
# listing (scripts/asm_smoke.asm) and as canonical hex CSV
# (scripts/asm_smoke.csv, its committed twin) must drive bhive-eval and
# bhive-lint to byte-identical output. Any diff means the text front door
# drifted from the hex one — parse, encode canonicalization, or corpus
# identity broke.
#
# Used by CI (.github/workflows/ci.yml, job asm-smoke) and runnable
# locally: ./scripts/asm_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "asm-smoke: evaluating the corpus via both front doors"
go run ./cmd/bhive-eval -exp table5 -asm scripts/asm_smoke.asm \
  > "$WORK/eval_asm.txt"
go run ./cmd/bhive-eval -exp table5 -corpus scripts/asm_smoke.csv \
  > "$WORK/eval_hex.txt"
diff -u "$WORK/eval_hex.txt" "$WORK/eval_asm.txt" || {
  echo "asm-smoke: FAIL: bhive-eval output differs between -asm and -corpus" >&2
  exit 1
}

echo "asm-smoke: auditing the corpus via both front doors"
go run ./cmd/bhive-lint -asm scripts/asm_smoke.asm > "$WORK/lint_asm.txt"
go run ./cmd/bhive-lint -corpus scripts/asm_smoke.csv > "$WORK/lint_hex.txt"
diff -u "$WORK/lint_hex.txt" "$WORK/lint_asm.txt" || {
  echo "asm-smoke: FAIL: bhive-lint output differs between -asm and -corpus" >&2
  exit 1
}

echo "asm-smoke: OK (text and hex front doors are byte-identical)"
