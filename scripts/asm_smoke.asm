# Assembly-listing twin of asm_smoke.csv: the asm front door must produce
# byte-identical evaluation output to the hex front door on this corpus.
# Mixed Intel and AT&T syntax on purpose — both normalize through the
# encoder into the same canonical machine code.

@ alu 3
add rax, rbx
imul rcx, rdx
xor edx, edx        # zero idiom
cmp rcx, rdi

@ memory 2
mov rcx, qword ptr [rsp+8]
mov qword ptr [rsp+8], rcx
lea rax, [rbx+rcx*2]

@ att-flavor 5
addq %rbx, %rax     ; AT&T operand order
movq 8(%rsp), %rcx
xorl %edx, %edx
shrq $8, %rdx

@ chase
mov rax, qword ptr [rax]
add rdi, 1

@ divider
xor edx, edx
div ecx
add rbx, 1

@ vector 4
vpaddd ymm0, ymm0, ymm0
vfmadd231ps ymm0, ymm1, ymm2
vzeroupper

@ crc 7
add rdi, 1
mov eax, edx
shr rdx, 8
movzx eax, al
xor rdx, qword ptr [rax*8+0x4110a]
cmp rcx, rdi
