#!/usr/bin/env bash
# Record-and-replay smoke: drive bhive-record with the deterministic
# perfstub source over the decodable subset of the blocklint fixture
# corpus, then cross-validate the recorded trace against the simulator
# and hold the result to a committed golden.
#
# What this pins down, end to end:
#   - recording is byte-stable (two sweeps produce identical traces);
#   - the trace replays through -backend recorded:<path>;
#   - the xval report over sim vs the recorded counter backend is
#     byte-stable across runs and equal to scripts/record_smoke.golden,
#     including a non-empty status-disagreement matrix (the stub injects
#     acceptance faults the simulator does not share).
#
# Refresh the golden after an intentional change with:
#   ./scripts/record_smoke.sh --update
#
# Used by CI (.github/workflows/ci.yml, job record-smoke) and runnable
# locally: ./scripts/record_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=scripts/record_smoke.golden
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# The raw fixture ends in deliberately-undecodable lint rows; strip them
# the same way boundcheck_smoke.sh does.
grep -v '^pathological,' internal/blocklint/testdata/example_corpus.csv \
  > "$WORK/corpus.csv"

echo "record-smoke: recording the fixture corpus with the perfstub source"
go run ./cmd/bhive-record -o "$WORK/counter.trace" -backend counter \
  -corpus "$WORK/corpus.csv" -uarch haswell
go run ./cmd/bhive-record -o "$WORK/counter2.trace" -backend counter \
  -corpus "$WORK/corpus.csv" -uarch haswell >/dev/null

cmp "$WORK/counter.trace" "$WORK/counter2.trace" || {
  echo "record-smoke: FAIL: two recordings of the same sweep differ" >&2
  exit 1
}

echo "record-smoke: cross-validating the recorded trace against the simulator"
go run ./cmd/bhive-eval -backend "sim,recorded:$WORK/counter.trace" \
  -corpus "$WORK/corpus.csv" -uarch haswell > "$WORK/xval1.txt"
go run ./cmd/bhive-eval -backend "sim,recorded:$WORK/counter.trace" \
  -corpus "$WORK/corpus.csv" -uarch haswell > "$WORK/xval2.txt"

cmp "$WORK/xval1.txt" "$WORK/xval2.txt" || {
  echo "record-smoke: FAIL: xval report not byte-stable across runs" >&2
  exit 1
}

grep -q 'xval-status' "$WORK/xval1.txt" && grep -q 'cache-miss' "$WORK/xval1.txt" || {
  echo "record-smoke: FAIL: status-disagreement matrix empty (stub fault injection broken?)" >&2
  exit 1
}

if [[ "${1:-}" == "--update" ]]; then
  cp "$WORK/xval1.txt" "$GOLDEN"
  echo "record-smoke: refreshed $GOLDEN"
  exit 0
fi

diff -u "$GOLDEN" "$WORK/xval1.txt" || {
  echo "record-smoke: FAIL: xval report drifted from $GOLDEN" >&2
  echo "record-smoke: refresh with ./scripts/record_smoke.sh --update if intentional" >&2
  exit 1
}
echo "record-smoke: OK (stable recording, stable replay, matrix matches golden)"
