// Command bhive-profile measures the steady-state throughput (cycles per
// iteration) of one x86-64 basic block on a simulated microarchitecture,
// using the full BHive methodology or any ablated subset of it.
//
// Usage:
//
//	bhive-profile -uarch haswell -hex 4801d8
//	bhive-profile -uarch haswell -block 'add rax, rbx'
//	echo 'xor %edx, %edx
//	div %ecx' | bhive-profile -models
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"bhive"
	"bhive/internal/models"
	"bhive/internal/uarch"
)

func main() {
	var (
		arch      = flag.String("uarch", "haswell", "microarchitecture: ivybridge, haswell, skylake")
		hexStr    = flag.String("hex", "", "basic block as machine-code hex")
		blockText = flag.String("block", "", "basic block as assembly (Intel or AT&T; default: read stdin)")
		noMap     = flag.Bool("no-mapping", false, "disable page mapping (Agner-script baseline)")
		naive     = flag.Bool("naive-unroll", false, "time a single 100x unroll instead of the derived method")
		keepSub   = flag.Bool("keep-subnormals", false, "do not set MXCSR FTZ/DAZ")
		noFilter  = flag.Bool("no-misaligned-filter", false, "accept measurements with line-splitting accesses")
		runModels = flag.Bool("models", false, "also print the analytical models' predictions")
		report    = flag.Bool("report", false, "print an IACA-style port-pressure report")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	block, err := readBlock(*hexStr, *blockText)
	if err != nil {
		fatal(err)
	}

	opts := bhive.DefaultOptions()
	if *noMap {
		opts = bhive.BaselineOptions()
	}
	if *naive {
		opts.DerivedThroughput = false
	}
	if *keepSub {
		opts.DisableSubnormals = false
	}
	if *noFilter {
		opts.FilterMisaligned = false
	}

	res, err := bhive.ProfileWith(*arch, block, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("uarch:       %s\n", *arch)
	fmt.Printf("block:       %d instructions\n", len(block.Insts))
	fmt.Printf("status:      %s\n", res.Status)
	if res.Status == bhive.StatusOK {
		fmt.Printf("throughput:  %.2f cycles/iteration\n", res.Throughput)
		fmt.Printf("unroll:      %d and %d\n", res.UnrollLo, res.UnrollHi)
		fmt.Printf("pages:       %d mapped by the monitor\n", res.PagesMapped)
		fmt.Printf("samples:     %d/%d clean\n", res.CleanSamples, 16)
	} else if res.Err != nil {
		fmt.Printf("error:       %v\n", res.Err)
	}

	if *runModels {
		ms, err := bhive.Models(*arch)
		if err != nil {
			fatal(err)
		}
		fmt.Println("models:")
		for _, m := range ms {
			p, err := m.Predict(block)
			if err != nil {
				fmt.Printf("  %-9s -  (%v)\n", m.Name(), err)
				continue
			}
			fmt.Printf("  %-9s %.2f\n", m.Name(), p)
		}
	}

	if *report {
		cpu, err := uarch.ByName(*arch)
		if err != nil {
			fatal(err)
		}
		text, err := models.Report(cpu, block)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(text)
	}
}

func readBlock(hexStr, blockText string) (*bhive.Block, error) {
	switch {
	case hexStr != "":
		return bhive.BlockFromHex(hexStr)
	case blockText != "":
		return bhive.ParseBlock(blockText, bhive.SyntaxAuto)
	default:
		raw, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return bhive.ParseBlock(string(raw), bhive.SyntaxAuto)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bhive-profile:", err)
	os.Exit(1)
}
