// Command bhive-profile measures the steady-state throughput (cycles per
// iteration) of one x86-64 basic block on a simulated microarchitecture,
// using the full BHive methodology or any ablated subset of it.
//
// Usage:
//
//	bhive-profile -uarch haswell -hex 4801d8
//	bhive-profile -uarch haswell -block 'add rax, rbx'
//	echo 'xor %edx, %edx
//	div %ecx' | bhive-profile -models
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"bhive"
	"bhive/internal/models"
	"bhive/internal/uarch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "bhive-profile:", err)
		}
		os.Exit(1)
	}
}

// run keeps every cleanup (CPU/heap profile flushing) on a defer behind a
// single exit point, so error paths cannot skip them the way the old
// fatal()/os.Exit(1) shape did.
func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("bhive-profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		arch      = fs.String("uarch", "haswell", "microarchitecture: ivybridge, haswell, skylake, icelake")
		hexStr    = fs.String("hex", "", "basic block as machine-code hex")
		blockText = fs.String("block", "", "basic block as assembly (Intel or AT&T; default: read stdin)")
		noMap     = fs.Bool("no-mapping", false, "disable page mapping (Agner-script baseline)")
		naive     = fs.Bool("naive-unroll", false, "time a single 100x unroll instead of the derived method")
		keepSub   = fs.Bool("keep-subnormals", false, "do not set MXCSR FTZ/DAZ")
		noFilter  = fs.Bool("no-misaligned-filter", false, "accept measurements with line-splitting accesses")
		prescreen = fs.Bool("prescreen", false, "statically analyze first and skip the measurement if the block is rejected")
		runModels = fs.Bool("models", false, "also print the analytical models' predictions")
		report    = fs.Bool("report", false, "print an IACA-style port-pressure report")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, cerr := os.Create(*cpuProf)
		if cerr != nil {
			return cerr
		}
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			f.Close()
			return cerr
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, cerr := os.Create(*memProf)
			if cerr != nil {
				if err == nil {
					err = cerr
				}
				return
			}
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			f.Close()
			if werr != nil && err == nil {
				err = werr
			}
		}()
	}

	block, err := readBlock(*hexStr, *blockText)
	if err != nil {
		return err
	}

	opts := bhive.DefaultOptions()
	if *noMap {
		opts = bhive.BaselineOptions()
	}
	if *naive {
		opts.DerivedThroughput = false
	}
	if *keepSub {
		opts.DisableSubnormals = false
	}
	if *noFilter {
		opts.FilterMisaligned = false
	}

	if *prescreen {
		rep, lerr := bhive.Lint(*arch, block, opts)
		if lerr != nil {
			return lerr
		}
		if rep.Rejected() {
			fmt.Fprintf(stdout, "uarch:       %s\n", *arch)
			fmt.Fprintf(stdout, "block:       %d instructions\n", len(block.Insts))
			fmt.Fprintf(stdout, "status:      %s (statically rejected; measurement skipped)\n", rep.PredictedName)
			for _, d := range rep.Diags {
				fmt.Fprintf(stdout, "diag:        %s\n", d)
			}
			return nil
		}
	}

	res, err := bhive.ProfileWith(*arch, block, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "uarch:       %s\n", *arch)
	fmt.Fprintf(stdout, "block:       %d instructions\n", len(block.Insts))
	fmt.Fprintf(stdout, "status:      %s\n", res.Status)
	if res.Status == bhive.StatusOK {
		fmt.Fprintf(stdout, "throughput:  %.2f cycles/iteration\n", res.Throughput)
		fmt.Fprintf(stdout, "unroll:      %d and %d\n", res.UnrollLo, res.UnrollHi)
		fmt.Fprintf(stdout, "pages:       %d mapped by the monitor\n", res.PagesMapped)
		fmt.Fprintf(stdout, "samples:     %d/%d clean\n", res.CleanSamples, 16)
	} else if res.Err != nil {
		fmt.Fprintf(stdout, "error:       %v\n", res.Err)
	}

	if *runModels {
		ms, merr := bhive.Models(*arch)
		if merr != nil {
			return merr
		}
		fmt.Fprintln(stdout, "models:")
		for _, m := range ms {
			p, perr := m.Predict(block)
			if perr != nil {
				fmt.Fprintf(stdout, "  %-9s -  (%v)\n", m.Name(), perr)
				continue
			}
			fmt.Fprintf(stdout, "  %-9s %.2f\n", m.Name(), p)
		}
	}

	if *report {
		cpu, uerr := uarch.ByName(*arch)
		if uerr != nil {
			return uerr
		}
		text, rerr := models.Report(cpu, block)
		if rerr != nil {
			return rerr
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, text)
	}
	return nil
}

func readBlock(hexStr, blockText string) (*bhive.Block, error) {
	switch {
	case hexStr != "":
		return bhive.BlockFromHex(hexStr)
	case blockText != "":
		return bhive.ParseBlock(blockText, bhive.SyntaxAuto)
	default:
		raw, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return bhive.ParseBlock(string(raw), bhive.SyntaxAuto)
	}
}
