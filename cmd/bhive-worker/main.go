// Command bhive-worker is the worker half of distributed evaluation: it
// polls a bhive-serve coordinator (started with -dist) for shard-range
// leases, rebuilds the job's evaluation suite from the normalized
// request, verifies the run fingerprint matches (refusing to compute
// under corpus or version skew), computes each leased shard through the
// same pipeline a local run uses, and posts the results back. The
// coordinator journals them, so the merged result is byte-identical to a
// single-node run — and killing a worker mid-lease loses at most the
// shards it had not yet delivered (the lease expires and re-issues).
//
// Usage:
//
//	bhive-worker -coordinator http://localhost:8421
//	bhive-worker -coordinator http://host:8421 -token sekrit -name rack3-a -profile-cache worker-profiles.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bhive/internal/dist"
	"bhive/internal/harness"
	"bhive/internal/profcache"
	"bhive/internal/server"
)

func main() {
	code := 0
	if err := run(os.Args[1:], os.Stderr); err != nil {
		if err != flag.ErrHelp && err != context.Canceled {
			fmt.Fprintln(os.Stderr, "bhive-worker:", err)
			code = 1
		}
	}
	os.Exit(code)
}

func run(args []string, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("bhive-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		coord   = fs.String("coordinator", "http://localhost:8421", "coordinator base URL (bhive-serve -dist)")
		token   = fs.String("token", "", "bearer token for non-loopback coordinators")
		name    = fs.String("name", "", "worker name in leases and logs (default: host-pid)")
		cacheF  = fs.String("profile-cache", "", "persistent profile cache file for this worker (created if absent)")
		workers = fs.Int("workers", 0, "profiling parallelism within a shard (0 = GOMAXPROCS)")
		poll    = fs.Duration("poll", time.Second, "idle sleep between no-work polls (jittered)")
		timeout = fs.Duration("request-timeout", 30*time.Second, "per-HTTP-call timeout")
		quiet   = fs.Bool("quiet", false, "suppress progress logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	var pc *profcache.Cache
	if *cacheF != "" {
		pc, err = profcache.Open(*cacheF)
		if err != nil {
			return err
		}
		defer func() {
			if serr := pc.Save(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	var logger *log.Logger
	if !*quiet {
		logger = log.New(stderr, "bhive-worker ", log.LstdFlags)
	}
	w, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator:    *coord,
		Token:          *token,
		Name:           *name,
		PollInterval:   *poll,
		RequestTimeout: *timeout,
		Log:            logger,
		BuildSuite: func(request []byte, shardSize int) (*harness.Suite, error) {
			cfg, err := server.WorkerHarnessConfig(request, shardSize)
			if err != nil {
				return nil, err
			}
			cfg.Workers = *workers
			cfg.ProfileCache = pc
			return harness.New(cfg), nil
		},
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = w.Run(ctx)
	if logger != nil {
		logger.Printf("[%s] exiting after %d shards", *name, w.ShardsDone())
	}
	return err
}
