package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"bhive/internal/corpus"
	"bhive/internal/x86"
)

// lintCorpus is the committed fixture corpus the bhive-lint golden audit
// uses — a stable on-disk input, so the e2e output is pinnable.
const lintCorpus = "../../internal/blocklint/testdata/example_corpus.csv"

// filteredCorpus derives the decodable subset of the lint fixture into a
// temp CSV. The fixture deliberately carries undecodable rows for the
// auditor; the eval pipeline reads strictly, so the e2e input is the
// fixture minus exactly those rows — a deterministic derivation, which
// keeps the committed golden stable.
func filteredCorpus(t *testing.T) string {
	t.Helper()
	f, err := os.Open(lintCorpus)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	raw, err := corpus.ReadCSVRaw(f)
	if err != nil {
		t.Fatal(err)
	}
	var recs []corpus.Record
	for _, r := range raw {
		b, err := x86.BlockFromHex(r.Hex)
		if err != nil {
			continue
		}
		recs = append(recs, corpus.Record{App: r.App, Block: b, Freq: r.Freq})
	}
	if len(recs) < 500 {
		t.Fatalf("fixture corpus shrank to %d decodable rows; e2e input no longer meaningful", len(recs))
	}
	path := filepath.Join(t.TempDir(), "corpus.csv")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.WriteCSV(out, recs); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// buildEval compiles the real binary into a temp dir. The in-process
// tests above cover run()'s logic; this covers what they cannot — flag
// wiring through main, process exit codes, and the interrupt/resume
// cycle across separate process lifetimes.
func buildEval(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bhive-eval")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestE2EInterruptResumeGolden drives the built binary over the lint
// fixture corpus through a full interrupt/resume cycle: a shard-budgeted
// run exits non-zero after checkpointing two shards, the re-run resumes
// them from the journal, and the final stdout is byte-identical to the
// committed golden.
func TestE2EInterruptResumeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary (seconds)")
	}
	bin := buildEval(t)
	ckpt := filepath.Join(t.TempDir(), "e2e.ckpt")
	args := []string{
		"-exp", "xval", "-backend", "sim,perturbed",
		"-corpus", filteredCorpus(t),
		"-shard-size", "256", "-checkpoint", ckpt,
	}

	// Interrupted run: the shard budget must stop it mid-corpus with a
	// non-zero exit and the resume hint on stderr.
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, append(args, "-stop-after-shards", "2")...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatal("shard-budgeted run must exit non-zero")
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit: %v, want exit code 1", err)
	}
	if !strings.Contains(stderr.String(), "shard budget reached") {
		t.Fatalf("interrupted run stderr missing resume hint:\n%s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("interrupted run wrote tables:\n%s", stdout.String())
	}

	// Resumed run: must pick up the checkpointed shards and complete.
	stdout.Reset()
	stderr.Reset()
	cmd = exec.Command(bin, append(args, "-progress")...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("resumed run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resumed from checkpoint") {
		t.Fatalf("resumed run recomputed everything; progress:\n%s", stderr.String())
	}

	golden := "testdata/e2e_xval_lint_corpus.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("e2e output diverged from the golden.\n--- got ---\n%s\n--- want ---\n%s",
			stdout.Bytes(), want)
	}

	// A third run over the same journal resumes every shard and stays
	// byte-identical — the determinism contract across process lifetimes.
	var again bytes.Buffer
	cmd = exec.Command(bin, args...)
	cmd.Stdout = &again
	if err := cmd.Run(); err != nil {
		t.Fatalf("third run: %v", err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Fatal("fully-resumed third run diverged from the golden")
	}
}

// TestE2ERecordReplay exercises the acceptance criterion end to end with
// the built binary: record a sim trace over the fixture corpus, then
// replay it and require byte-identical stdout.
func TestE2ERecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary (seconds)")
	}
	bin := buildEval(t)
	trace := filepath.Join(t.TempDir(), "sim.trace")
	corpusCSV := filteredCorpus(t)

	runEval := func(extra ...string) []byte {
		t.Helper()
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, append([]string{"-corpus", corpusCSV}, extra...)...)
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr:\n%s", extra, err, stderr.String())
		}
		return stdout.Bytes()
	}

	recorded := runEval("-backend", "sim", "-record", trace)
	replayed := runEval("-backend", "recorded:"+trace)
	if !bytes.Equal(recorded, replayed) {
		t.Fatalf("replay diverged from the recording run.\n--- recorded ---\n%s\n--- replayed ---\n%s",
			recorded, replayed)
	}
}
