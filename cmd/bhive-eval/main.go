// Command bhive-eval regenerates the paper's tables and figures against
// the simulated machine. Each experiment id corresponds to one table or
// figure; see DESIGN.md for the index.
//
// Usage:
//
//	bhive-eval -exp table5 -scale 0.01
//	bhive-eval -exp case-study
//	bhive-eval -exp fig-cluster-err -uarch haswell
//	bhive-eval -exp all -scale 0.005 -ithemal
//	bhive-eval -exp table5 -profile-cache /tmp/bhive.cache
//	bhive-eval -exp table5 -scale 0.2 -checkpoint /tmp/run.ckpt -progress
//	bhive-eval -backend sim,perturbed -scale 0.01
//	bhive-eval -backend sim -record /tmp/sim.trace
//	bhive-eval -backend recorded:/tmp/sim.trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"bhive/internal/backend"
	"bhive/internal/corpus"
	_ "bhive/internal/counter" // registers the counter:<source> backend scheme
	"bhive/internal/harness"
	"bhive/internal/profcache"
)

func main() {
	code := 0
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "bhive-eval:", err)
		}
		code = 1
	}
	os.Exit(code)
}

// run is the whole command behind a single exit point: every cleanup —
// saving the profile cache, closing the checkpoint journal, stopping the
// CPU profiler — is a defer, so it runs on the error paths too. The old
// fatal()/os.Exit(1) shape silently skipped all of them, losing the
// profile cache whenever an experiment failed.
func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("bhive-eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "experiment id: "+strings.Join(harness.AllNames(), ", ")+", or all")
		scale     = fs.Float64("scale", 0.01, "corpus scale (1.0 = the paper's 358,561 blocks)")
		seed      = fs.Int64("seed", 7, "seed")
		arch      = fs.String("uarch", "", "restrict per-µarch figures to one microarchitecture")
		trainIt   = fs.Bool("ithemal", false, "train and include the learned model (slow)")
		epochs    = fs.Int("ithemal-epochs", 12, "LSTM training epochs")
		corpusF   = fs.String("corpus", "", "load the corpus from a bhive-collect CSV instead of generating it")
		asmF      = fs.String("asm", "", "load the corpus from an assembly listing ('@ app [freq]' headers, Intel or AT&T instructions)")
		cacheF    = fs.String("profile-cache", "", "persistent profile cache file (created if absent; reruns skip profiling)")
		shardSize = fs.Int("shard-size", harness.DefaultShardSize, "corpus records per evaluation shard (the unit of checkpointing)")
		ckptF     = fs.String("checkpoint", "", "shard checkpoint journal (created if absent; an interrupted run resumes from it)")
		fsyncN    = fs.Int("fsync-every", 1, "fsync the checkpoint once per N shards (group commit; a crash loses at most the last N-1 shards)")
		progress  = fs.Bool("progress", false, "print per-shard progress lines (blocks/s, cache-hit rate, rejects) to stderr")
		prescreen = fs.Bool("prescreen", false, "statically reject blocks before profiling (skips counted as prescreened=N)")
		crosschk  = fs.Bool("crosscheck", false, "validate dynamic reject statuses against static predictions (mismatches to -progress)")
		backends  = fs.String("backend", "", "comma-separated measurement backends to cross-validate (sim, perturbed, recorded:<path>); implies -exp xval")
		recordF   = fs.String("record", "", "record every measurement to a replayable trace at this path (requires exactly one -backend)")
		stopAfter = fs.Int("stop-after-shards", 0, "stop with an error after computing this many shards (chunked batch runs; resume via -checkpoint)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, cerr := os.Create(*cpuProf)
		if cerr != nil {
			return cerr
		}
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			f.Close()
			return cerr
		}
		defer pprof.StopCPUProfile()
	}

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.TrainIthemal = *trainIt
	cfg.IthemalEpochs = *epochs
	cfg.ShardSize = *shardSize
	cfg.CheckpointPath = *ckptF
	cfg.FsyncEvery = *fsyncN
	cfg.Prescreen = *prescreen
	cfg.Crosscheck = *crosschk
	cfg.StopAfterShards = *stopAfter
	if *progress {
		cfg.Progress = stderr
	}
	if *corpusF != "" && *asmF != "" {
		return errors.New("-corpus and -asm are mutually exclusive")
	}
	if *corpusF != "" {
		f, oerr := os.Open(*corpusF)
		if oerr != nil {
			return oerr
		}
		cfg.Records, err = corpus.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *asmF != "" {
		f, oerr := os.Open(*asmF)
		if oerr != nil {
			return oerr
		}
		cfg.Records, err = corpus.ReadAsm(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	var pc *profcache.Cache
	if *cacheF != "" {
		pc, err = profcache.Open(*cacheF)
		if err != nil {
			return err
		}
		cfg.ProfileCache = pc
		defer func() {
			if serr := pc.Save(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	// Backend selection (cross-validation runs). Backends are built after
	// the profile cache opens (simulator backends share it) and before the
	// suite, whose run fingerprint includes their identities.
	runExp := *exp
	if *backends != "" {
		bes, berr := backend.ParseList(*backends, backend.Options{Cache: pc})
		if berr != nil {
			return berr
		}
		if *recordF != "" {
			if len(bes) != 1 {
				for _, be := range bes {
					be.Close()
				}
				return fmt.Errorf("-record needs exactly one -backend, got %d", len(bes))
			}
			rec, rerr := backend.NewRecorder(bes[0], *recordF)
			if rerr != nil {
				bes[0].Close()
				return rerr
			}
			bes = []backend.Backend{rec}
		}
		defer func() {
			for _, be := range bes {
				if cerr := be.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}()
		cfg.Backends = bes
		if runExp == "all" {
			runExp = harness.XValID
		}
	} else if *recordF != "" {
		return errors.New("-record requires -backend naming what to record")
	}

	s := harness.New(cfg)
	defer s.Close()

	// On SIGINT/SIGTERM, flush what a plain os.Exit would lose — the
	// profile cache (completed checkpoint shards are already durable) —
	// then exit with the conventional interrupted status. The handler is
	// installed after the cache is open so it never races cache creation.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	defer func() { signal.Stop(sig); close(done) }()
	go func() {
		select {
		case <-done:
		case got := <-sig:
			fmt.Fprintf(stderr, "bhive-eval: %v: flushing caches before exit\n", got)
			if *cpuProf != "" {
				pprof.StopCPUProfile()
			}
			s.Close()
			if pc != nil {
				if serr := pc.Save(); serr != nil {
					fmt.Fprintln(stderr, "bhive-eval:", serr)
				}
			}
			os.Exit(130)
		}
	}()

	out, err := s.Run(runExp, *arch)
	if err != nil {
		if errors.Is(err, harness.ErrInterrupted) {
			fmt.Fprintln(stderr, "bhive-eval: shard budget reached; re-run with the same -checkpoint to continue")
		}
		return err
	}
	fmt.Fprint(stdout, out)
	if *crosschk {
		fmt.Fprintf(stderr, "bhive-eval: crosscheck: %d static/dynamic mismatches\n", s.CrosscheckMismatches())
	}

	if *memProf != "" {
		f, cerr := os.Create(*memProf)
		if cerr != nil {
			return cerr
		}
		runtime.GC()
		werr := pprof.WriteHeapProfile(f)
		f.Close()
		if werr != nil {
			return werr
		}
	}
	return nil
}
