// Command bhive-eval regenerates the paper's tables and figures against
// the simulated machine. Each experiment id corresponds to one table or
// figure; see DESIGN.md for the index.
//
// Usage:
//
//	bhive-eval -exp table5 -scale 0.01
//	bhive-eval -exp case-study
//	bhive-eval -exp fig-cluster-err -uarch haswell
//	bhive-eval -exp all -scale 0.005 -ithemal
//	bhive-eval -exp table5 -profile-cache /tmp/bhive.cache
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"bhive/internal/corpus"
	"bhive/internal/harness"
	"bhive/internal/profcache"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: "+strings.Join(harness.Names(), ", ")+", or all")
		scale   = flag.Float64("scale", 0.01, "corpus scale (1.0 = the paper's 358,561 blocks)")
		seed    = flag.Int64("seed", 7, "seed")
		arch    = flag.String("uarch", "", "restrict per-µarch figures to one microarchitecture")
		trainIt = flag.Bool("ithemal", false, "train and include the learned model (slow)")
		epochs  = flag.Int("ithemal-epochs", 12, "LSTM training epochs")
		corpusF = flag.String("corpus", "", "load the corpus from a bhive-collect CSV instead of generating it")
		cacheF  = flag.String("profile-cache", "", "persistent profile cache file (created if absent; reruns skip profiling)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.TrainIthemal = *trainIt
	cfg.IthemalEpochs = *epochs
	if *corpusF != "" {
		f, err := os.Open(*corpusF)
		if err != nil {
			fatal(err)
		}
		cfg.Records, err = corpus.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *cacheF != "" {
		pc, err := profcache.Open(*cacheF)
		if err != nil {
			fatal(err)
		}
		cfg.ProfileCache = pc
		defer func() {
			if err := pc.Save(); err != nil {
				fmt.Fprintln(os.Stderr, "bhive-eval:", err)
			}
		}()
	}

	s := harness.New(cfg)
	out, err := s.Run(*exp, *arch)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bhive-eval:", err)
	os.Exit(1)
}
