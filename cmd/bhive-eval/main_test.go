package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"bhive/internal/profcache"
)

// TestErrorPathStillSavesCache is the regression test for the old
// fatal()/os.Exit(1) bug: a failure after profiling (here, an unwritable
// -memprofile path) must not skip the deferred cache save, or every
// profiled block is silently re-measured on the next run.
func TestErrorPathStillSavesCache(t *testing.T) {
	cacheF := filepath.Join(t.TempDir(), "profiles.cache")
	err := run([]string{
		"-exp", "table1", "-scale", "0.002",
		"-profile-cache", cacheF,
		"-memprofile", filepath.Join(t.TempDir(), "no-such-dir", "mem"),
	}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("unwritable -memprofile must fail the run")
	}
	pc, perr := profcache.Open(cacheF)
	if perr != nil {
		t.Fatal(perr)
	}
	if pc.Len() == 0 {
		t.Fatal("profile cache was not saved on the error path")
	}
}

// TestCheckpointedRunFlags drives the new sharding flags end to end: a
// checkpointed table5 run at tiny scale, then a second run over the same
// journal that must produce identical output while resuming every shard.
func TestCheckpointedRunFlags(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	args := []string{
		"-exp", "table5", "-scale", "0.002",
		"-shard-size", "64", "-checkpoint", ckpt, "-progress",
	}

	var out1, prog1 bytes.Buffer
	if err := run(args, &out1, &prog1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog1.String(), "meas shard") {
		t.Fatalf("-progress produced no shard lines:\n%s", prog1.String())
	}

	var out2, prog2 bytes.Buffer
	if err := run(args, &out2, &prog2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("checkpointed re-run diverged.\n--- first ---\n%s\n--- second ---\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(prog2.String(), "resumed from checkpoint") {
		t.Fatalf("re-run did not resume from the journal:\n%s", prog2.String())
	}
}

func TestBadFlagsError(t *testing.T) {
	if err := run([]string{"-exp", "nope"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

// counterFixture is the checked-in counter-backend trace: the stub
// source swept over the generated corpus at scale 0.0005, seed 7, on
// haswell (see scripts/record_smoke.sh for how it is refreshed).
const counterFixture = "../../internal/backend/testdata/counter_haswell.trace"

// TestXValAgainstCounterFixture cross-validates the simulator against
// the checked-in counter-backend trace — a backend that genuinely
// disagrees with the simulator, so the status-disagreement matrix must
// be populated, and the whole report must be byte-stable across runs
// (replay is a pure lookup; the suite is seeded).
func TestXValAgainstCounterFixture(t *testing.T) {
	args := []string{
		"-backend", "sim,recorded:" + counterFixture,
		"-scale", "0.0005", "-seed", "7", "-uarch", "haswell",
	}
	var out1, out2 bytes.Buffer
	if err := run(args, &out1, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &out2, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatalf("xval against the fixture is not byte-stable.\n--- first ---\n%s\n--- second ---\n%s", out1.String(), out2.String())
	}

	report := out1.String()
	if !strings.Contains(report, "sim vs counter") {
		t.Fatalf("report never pairs sim with the replayed counter backend:\n%s", report)
	}
	// The disagreement matrix must hold at least one real row: the
	// fixture's injected cache-miss rejections against the simulator's ok.
	_, matrix, found := strings.Cut(report, "xval-status")
	if !found {
		t.Fatalf("report has no status-disagreement section:\n%s", report)
	}
	if !strings.Contains(matrix, "cache-miss") {
		t.Fatalf("status-disagreement matrix is empty or missing the injected cache-miss rows:\n%s", matrix)
	}
}
