package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"bhive/internal/profcache"
)

// TestErrorPathStillSavesCache is the regression test for the old
// fatal()/os.Exit(1) bug: a failure after profiling (here, an unwritable
// -memprofile path) must not skip the deferred cache save, or every
// profiled block is silently re-measured on the next run.
func TestErrorPathStillSavesCache(t *testing.T) {
	cacheF := filepath.Join(t.TempDir(), "profiles.cache")
	err := run([]string{
		"-exp", "table1", "-scale", "0.002",
		"-profile-cache", cacheF,
		"-memprofile", filepath.Join(t.TempDir(), "no-such-dir", "mem"),
	}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("unwritable -memprofile must fail the run")
	}
	pc, perr := profcache.Open(cacheF)
	if perr != nil {
		t.Fatal(perr)
	}
	if pc.Len() == 0 {
		t.Fatal("profile cache was not saved on the error path")
	}
}

// TestCheckpointedRunFlags drives the new sharding flags end to end: a
// checkpointed table5 run at tiny scale, then a second run over the same
// journal that must produce identical output while resuming every shard.
func TestCheckpointedRunFlags(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	args := []string{
		"-exp", "table5", "-scale", "0.002",
		"-shard-size", "64", "-checkpoint", ckpt, "-progress",
	}

	var out1, prog1 bytes.Buffer
	if err := run(args, &out1, &prog1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog1.String(), "meas shard") {
		t.Fatalf("-progress produced no shard lines:\n%s", prog1.String())
	}

	var out2, prog2 bytes.Buffer
	if err := run(args, &out2, &prog2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("checkpointed re-run diverged.\n--- first ---\n%s\n--- second ---\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(prog2.String(), "resumed from checkpoint") {
		t.Fatalf("re-run did not resume from the journal:\n%s", prog2.String())
	}
}

func TestBadFlagsError(t *testing.T) {
	if err := run([]string{"-exp", "nope"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
