// Command bhive-exegesis measures per-instruction latency, reciprocal
// throughput and execution-port usage by generating micro-benchmarks on
// the simulated machine — the llvm-exegesis / Abel-and-Reineke side of the
// tooling the paper surveys. Like those tools, it is limited to
// register-only instruction forms.
//
// Usage:
//
//	bhive-exegesis -uarch haswell
//	bhive-exegesis -uarch skylake -inst 'addss xmm0, xmm1'
package main

import (
	"flag"
	"fmt"
	"os"

	"bhive/internal/portmap"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func main() {
	var (
		arch = flag.String("uarch", "haswell", "microarchitecture")
		inst = flag.String("inst", "", "measure a single instruction (default: the built-in template set)")
	)
	flag.Parse()

	cpu, err := uarch.ByName(*arch)
	if err != nil {
		fatal(err)
	}

	templates := portmap.DefaultTemplates()
	if *inst != "" {
		in, err := x86.ParseInst(*inst, x86.SyntaxAuto)
		if err != nil {
			fatal(err)
		}
		templates = []x86.Inst{in}
	}

	entries, err := portmap.BuildTable(cpu, templates)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-28s %9s %12s %8s %6s\n", "instruction", "latency", "rthroughput", "ports", "µops")
	for _, e := range entries {
		fmt.Printf("%-28s %9.2f %12.2f %8s %6.2f\n",
			e.Inst, e.Latency, e.RThroughput, e.Ports, e.UopsPer)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bhive-exegesis:", err)
	os.Exit(1)
}
