// Command bhive-exegesis measures per-instruction latency, reciprocal
// throughput and execution-port usage by generating micro-benchmarks on
// the simulated machine — the llvm-exegesis / Abel-and-Reineke side of the
// tooling the paper surveys. Like those tools, it is limited to
// register-only instruction forms.
//
// Usage:
//
//	bhive-exegesis -uarch haswell
//	bhive-exegesis -uarch skylake -inst 'addss xmm0, xmm1'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bhive/internal/portmap"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "bhive-exegesis:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bhive-exegesis", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		arch = fs.String("uarch", "haswell", "microarchitecture")
		inst = fs.String("inst", "", "measure a single instruction (default: the built-in template set)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cpu, err := uarch.ByName(*arch)
	if err != nil {
		return err
	}

	templates := portmap.DefaultTemplates()
	if *inst != "" {
		in, err := x86.ParseInst(*inst, x86.SyntaxAuto)
		if err != nil {
			return err
		}
		templates = []x86.Inst{in}
	}

	entries, err := portmap.BuildTable(cpu, templates)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-28s %9s %12s %8s %6s\n", "instruction", "latency", "rthroughput", "ports", "µops")
	for _, e := range entries {
		fmt.Fprintf(stdout, "%-28s %9.2f %12.2f %8s %6.2f\n",
			e.Inst, e.Latency, e.RThroughput, e.Ports, e.UopsPer)
	}
	return nil
}
