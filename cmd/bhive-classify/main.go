// Command bhive-classify fits the LDA basic-block classifier over a
// generated corpus and prints the category table and the per-application
// breakdown; with -block or stdin input it classifies a single block.
//
// Usage:
//
//	bhive-classify -scale 0.01
//	echo 'vmulps %ymm0, %ymm1, %ymm2' | bhive-classify -scale 0.01 -stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bhive/internal/classify"
	"bhive/internal/corpus"
	"bhive/internal/harness"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.01, "corpus scale")
		seed  = flag.Int64("seed", 7, "seed")
		stdin = flag.Bool("stdin", false, "classify one block read from stdin")
		block = flag.String("block", "", "classify one block given as assembly")
	)
	flag.Parse()

	recs := corpus.GenerateAll(*scale, *seed)
	blocks := make([]*x86.Block, len(recs))
	for i := range recs {
		blocks[i] = recs[i].Block
	}
	opts := classify.DefaultOptions()
	opts.Seed = *seed
	cls := classify.Fit(uarch.Haswell(), blocks, opts)

	if *stdin || *block != "" {
		text := *block
		if *stdin {
			raw, err := io.ReadAll(os.Stdin)
			if err != nil {
				fatal(err)
			}
			text = string(raw)
		}
		b, err := x86.ParseBlock(text, x86.SyntaxAuto)
		if err != nil {
			fatal(err)
		}
		cat := cls.Classify(b)
		fmt.Printf("%s: %s\n", cat, cat.Description())
		return
	}

	// Corpus-level report, via the harness renderers.
	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	s := harness.New(cfg)
	fmt.Print(s.Table4().Render())
	fmt.Println()
	fmt.Print(s.FigAppsVsClusters().Render())
	fmt.Println()
	fmt.Print(s.FigExamples())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bhive-classify:", err)
	os.Exit(1)
}
