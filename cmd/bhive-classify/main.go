// Command bhive-classify fits the LDA basic-block classifier over a
// generated corpus and prints the category table and the per-application
// breakdown; with -block or stdin input it classifies a single block.
//
// Usage:
//
//	bhive-classify -scale 0.01
//	echo 'vmulps %ymm0, %ymm1, %ymm2' | bhive-classify -scale 0.01 -stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bhive/internal/classify"
	"bhive/internal/corpus"
	"bhive/internal/harness"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "bhive-classify:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bhive-classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale = fs.Float64("scale", 0.01, "corpus scale")
		seed  = fs.Int64("seed", 7, "seed")
		stdin = fs.Bool("stdin", false, "classify one block read from stdin")
		block = fs.String("block", "", "classify one block given as assembly")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	recs := corpus.GenerateAll(*scale, *seed)
	blocks := make([]*x86.Block, len(recs))
	for i := range recs {
		blocks[i] = recs[i].Block
	}
	opts := classify.DefaultOptions()
	opts.Seed = *seed
	cls := classify.Fit(uarch.Haswell(), blocks, opts)

	if *stdin || *block != "" {
		text := *block
		if *stdin {
			raw, err := io.ReadAll(os.Stdin)
			if err != nil {
				return err
			}
			text = string(raw)
		}
		b, err := x86.ParseBlock(text, x86.SyntaxAuto)
		if err != nil {
			return err
		}
		cat := cls.Classify(b)
		fmt.Fprintf(stdout, "%s: %s\n", cat, cat.Description())
		return nil
	}

	// Corpus-level report, via the harness renderers.
	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	s := harness.New(cfg)
	fmt.Fprint(stdout, s.Table4().Render())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, s.FigAppsVsClusters().Render())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, s.FigExamples())
	return nil
}
