// Command bhive-collect generates the benchmark suite: it runs the
// modelled applications through the dynamic collector and writes the
// blocks as CSV (application, machine-code hex, execution frequency) —
// the storage format of the suite.
//
// Usage:
//
//	bhive-collect -scale 0.01 -out corpus.csv
//	bhive-collect -app GZip -scale 1.0
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"bhive/internal/corpus"
)

func main() {
	var (
		scale  = flag.Float64("scale", 0.01, "corpus scale (1.0 = the paper's full counts)")
		seed   = flag.Int64("seed", 7, "generation seed")
		app    = flag.String("app", "", "collect a single application (default: all)")
		google = flag.Bool("google", false, "collect the Spanner/Dremel case-study corpora instead")
		out    = flag.String("out", "-", "output file (- for stdout)")
	)
	flag.Parse()

	var recs []corpus.Record
	switch {
	case *google:
		for _, a := range corpus.GoogleApps() {
			recs = append(recs, a.Generate(*scale, *seed)...)
		}
	case *app != "":
		a := corpus.AppByName(*app)
		if a == nil {
			fmt.Fprintf(os.Stderr, "bhive-collect: unknown application %q\n", *app)
			os.Exit(1)
		}
		recs = a.Generate(*scale, *seed)
	default:
		recs = corpus.GenerateAll(*scale, *seed)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bhive-collect:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	fmt.Fprintln(w, "app,hex,freq")
	for i := range recs {
		hexStr, err := recs[i].Block.Hex()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bhive-collect: encode block %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s,%s,%d\n", recs[i].App, hexStr, recs[i].Freq)
	}
	fmt.Fprintf(os.Stderr, "collected %d blocks\n", len(recs))
}
