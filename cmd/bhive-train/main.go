// Command bhive-train trains the Ithemal-style LSTM throughput predictor
// on a measured corpus and writes the model weights to disk.
//
// Usage:
//
//	bhive-train -uarch haswell -scale 0.005 -epochs 14 -out hsw.model
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"bhive/internal/corpus"
	"bhive/internal/models/ithemal"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "bhive-train:", err)
		}
		os.Exit(1)
	}
}

// run keeps the command behind a single exit point so the deferred
// close of the weights file cannot be skipped by an error path.
func run(args []string, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("bhive-train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		arch   = fs.String("uarch", "haswell", "microarchitecture")
		scale  = fs.Float64("scale", 0.004, "corpus scale for training data")
		seed   = fs.Int64("seed", 7, "seed")
		epochs = fs.Int("epochs", 14, "training epochs")
		lr     = fs.Float64("lr", 1e-3, "initial learning rate")
		out    = fs.String("out", "ithemal.model", "output weights file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cpu, err := uarch.ByName(*arch)
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "generating corpus at scale %g...\n", *scale)
	recs := corpus.GenerateAll(*scale, *seed)

	fmt.Fprintf(stderr, "profiling %d blocks on %s...\n", len(recs), cpu.Name)
	samples := measure(cpu, recs)
	fmt.Fprintf(stderr, "%d blocks profiled successfully\n", len(samples))

	m := ithemal.New(32, 64, *seed)
	cfg := ithemal.TrainConfig{
		Epochs: *epochs,
		LR:     *lr,
		Seed:   *seed,
		Progress: func(epoch int, loss float64) {
			fmt.Fprintf(stderr, "epoch %2d: loss %.4f\n", epoch, loss)
		},
	}
	m.Train(samples, cfg)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := m.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", *out)
	return nil
}

func measure(cpu *uarch.CPU, recs []corpus.Record) []ithemal.Sample {
	out := make([]ithemal.Sample, len(recs))
	ok := make([]bool, len(recs))
	var wg sync.WaitGroup
	ch := make(chan int, len(recs))
	for i := range recs {
		ch <- i
	}
	close(ch)
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := profiler.New(cpu, profiler.DefaultOptions())
			for i := range ch {
				r := p.Profile(recs[i].Block)
				if r.Status == profiler.StatusOK && r.Throughput > 0 {
					out[i] = ithemal.Sample{Block: recs[i].Block, Throughput: r.Throughput}
					ok[i] = true
				}
			}
		}()
	}
	wg.Wait()
	var samples []ithemal.Sample
	for i := range out {
		if ok[i] {
			samples = append(samples, out[i])
		}
	}
	return samples
}
