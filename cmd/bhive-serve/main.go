// Command bhive-serve runs the evaluation service: a long-running HTTP
// front end over the same sharded, checkpointed pipeline bhive-eval
// drives. Jobs are submitted as corpora of hex blocks (or generation
// requests), run through per-job fingerprint-bound checkpoint journals
// and a shared profile cache, and stream per-shard progress to clients
// over SSE. Killing the server mid-job loses nothing: the next start
// over the same -data directory resumes every unfinished job from its
// last completed shard and serves byte-identical results.
//
// Usage:
//
//	bhive-serve -addr :8421 -data /var/lib/bhive
//	bhive-serve -data ./serve-data -profile-cache ./serve-data/profiles.json
//
//	curl -s localhost:8421/v1/evaluate -d '{"experiments":["table5"],"scale":0.002}'
//	curl -s localhost:8421/v1/jobs/<id>
//	curl -sN localhost:8421/v1/jobs/<id>/events
//	curl -s localhost:8421/v1/jobs/<id>/result
//
// With -dist the server also acts as a distributed-evaluation
// coordinator: eligible jobs lease their corpus shards to bhive-worker
// processes over /v1/dist, and the merged result is byte-identical to a
// single-node run (worker payloads land in the job's checkpoint journal
// and replay through the normal pipeline).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "bhive/internal/counter" // registers the counter:<source> backend scheme
	"bhive/internal/profcache"
	"bhive/internal/server"
)

func main() {
	code := 0
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "bhive-serve:", err)
		}
		code = 1
	}
	os.Exit(code)
}

// run is the whole command behind a single exit point: shutdown drains
// running jobs to a durable shard boundary and flushes the shared profile
// cache via defers, so the error paths clean up exactly like SIGTERM.
func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("bhive-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8421", "listen address")
		dataDir = fs.String("data", "bhive-serve-data", "job state directory (requests, checkpoints, results)")
		cacheF  = fs.String("profile-cache", "", "shared persistent profile cache file (created if absent)")
		workers = fs.Int("workers", 0, "profiling workers per job (0 = GOMAXPROCS)")
		maxJobs = fs.Int("max-jobs", 1, "jobs running concurrently (queued jobs wait)")
		drain   = fs.Duration("drain-timeout", 5*time.Minute, "max wait for running jobs to reach a shard boundary on shutdown")
		fsyncN  = fs.Int("fsync-every", 1, "fsync job checkpoints once per N shards (group commit; a hard kill recomputes at most the last N-1 shards)")
		jobTTL  = fs.Duration("job-ttl", 0, "delete finished job directories this long after completion (0 = keep forever)")

		distOn    = fs.Bool("dist", false, "coordinator mode: lease corpus shards to bhive-worker processes over /v1/dist")
		distToken = fs.String("dist-token", "", "bearer token non-loopback workers must present (empty = /v1/dist is loopback-only)")
		leaseTTL  = fs.Duration("dist-lease-ttl", 0, "re-issue a worker's shards if unfinished after this long (0 = 2m)")
		leaseN    = fs.Int("dist-shards-per-lease", 0, "shards granted per lease (0 = 1)")
		inflight  = fs.Int("dist-max-inflight", 0, "max outstanding leases before 503 backpressure (0 = 64)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pc *profcache.Cache
	if *cacheF != "" {
		pc, err = profcache.Open(*cacheF)
		if err != nil {
			return err
		}
		defer func() {
			if serr := pc.Save(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	srv, err := server.New(server.Config{
		DataDir:            *dataDir,
		Cache:              pc,
		Workers:            *workers,
		MaxJobs:            *maxJobs,
		FsyncEvery:         *fsyncN,
		JobTTL:             *jobTTL,
		Dist:               *distOn,
		DistToken:          *distToken,
		DistLeaseTTL:       *leaseTTL,
		DistShardsPerLease: *leaseN,
		DistMaxInflight:    *inflight,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "bhive-serve: listening on %s (data: %s)\n", *addr, *dataDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errCh:
		// The listener died on its own (port clash, …): still drain jobs
		// so their shards are checkpointed before exit.
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if serr := srv.Shutdown(ctx); serr != nil {
			fmt.Fprintln(stderr, "bhive-serve: drain:", serr)
		}
		return err
	case got := <-sig:
		fmt.Fprintf(stdout, "bhive-serve: %v: draining jobs to a shard boundary\n", got)
	}

	// Drain order matters: stop the pipeline first (jobs checkpoint their
	// in-flight shard and return to the queue; SSE streams get a terminal
	// "interrupted" event), then close the listener so Shutdown isn't
	// stuck behind the long-lived event streams.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if serr := srv.Shutdown(ctx); serr != nil {
		fmt.Fprintln(stderr, "bhive-serve: drain:", serr)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer httpCancel()
	if serr := httpSrv.Shutdown(httpCtx); serr != nil && !errors.Is(serr, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "bhive-serve:", serr)
	}
	fmt.Fprintln(stdout, "bhive-serve: drained; unfinished jobs resume on next start")
	return nil
}
