// Command bhive-lint statically audits basic blocks without running the
// machine: for each block it predicts how the measurement protocol will
// classify it, checks encode/decode round-trip fidelity, and derives
// per-block facts (dependence height, memory address classes). Over a
// corpus CSV it prints a per-diagnostic histogram; with -json it emits one
// report object per block.
//
// Usage:
//
//	bhive-lint -uarch haswell -corpus corpus.csv
//	bhive-lint -hex 31c9f7f1
//	bhive-lint -corpus corpus.csv -json > reports.jsonl
//	bhive-lint -corpus corpus.csv -expect golden.txt   # CI fixture check
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"bhive/internal/blocklint"
	"bhive/internal/bound"
	"bhive/internal/corpus"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "bhive-lint:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bhive-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		arch      = fs.String("uarch", "haswell", "microarchitecture: ivybridge, haswell, skylake, icelake")
		corpusCSV = fs.String("corpus", "", "audit every block of this corpus CSV")
		asmF      = fs.String("asm", "", "audit every block of this assembly listing ('@ app [freq]' headers, Intel or AT&T instructions)")
		hexStr    = fs.String("hex", "", "audit a single block given as machine-code hex")
		jsonOut   = fs.Bool("json", false, "emit one JSON report per block instead of text")
		verbose   = fs.Bool("v", false, "print per-block diagnostics, not just the histogram")
		noMap     = fs.Bool("no-mapping", false, "audit under the Agner-script baseline options")
		expect    = fs.String("expect", "", "compare the histogram against this golden file and fail on drift")
		bounds    = fs.Bool("bounds", false, "print per-block static cycle bounds and the bottleneck verdict")
		legacyDep = fs.Bool("legacy-deps", false, "compute dependence facts with the pre-bound model (summed latencies, no rename awareness)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cpu, err := uarch.ByName(*arch)
	if err != nil {
		return err
	}
	opts := profiler.DefaultOptions()
	if *noMap {
		opts = profiler.BaselineOptions()
	}
	lint := blocklint.New(cpu, opts)
	lint.LegacyDepHeights = *legacyDep

	if *corpusCSV != "" && *asmF != "" {
		return fmt.Errorf("-corpus and -asm are mutually exclusive")
	}
	switch {
	case *hexStr != "":
		rep := lint.AnalyzeHex(*hexStr)
		if *jsonOut {
			return writeJSON(stdout, rep)
		}
		printReport(stdout, "", rep, *bounds)
		return nil
	case *corpusCSV != "":
		f, err := os.Open(*corpusCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		rows, err := corpus.ReadCSVRaw(f)
		if err != nil {
			return err
		}
		return audit(stdout, lint, rows, *jsonOut, *verbose, *bounds, *expect)
	case *asmF != "":
		f, err := os.Open(*asmF)
		if err != nil {
			return err
		}
		defer f.Close()
		recs, err := corpus.ReadAsm(f)
		if err != nil {
			return err
		}
		rows, err := corpus.RawRecords(recs)
		if err != nil {
			return err
		}
		return audit(stdout, lint, rows, *jsonOut, *verbose, *bounds, *expect)
	default:
		return fmt.Errorf("need -corpus, -asm or -hex (see -h)")
	}
}

// audit analyzes every row and prints the per-diagnostic histogram (or
// JSON reports). With a golden file, the histogram is compared against it.
func audit(stdout io.Writer, lint *blocklint.Analyzer, rows []corpus.RawRecord, jsonOut, verbose, bounds bool, expect string) error {
	bw := bufio.NewWriter(stdout)
	defer bw.Flush()

	codeHist := map[blocklint.Code]int{}
	statusHist := map[string]int{}
	rejected := 0
	for _, row := range rows {
		rep := lint.AnalyzeHex(row.Hex)
		statusHist[rep.PredictedName]++
		if rep.Rejected() {
			rejected++
		}
		seen := map[blocklint.Code]bool{}
		for _, d := range rep.Diags {
			if !seen[d.Code] {
				seen[d.Code] = true
				codeHist[d.Code]++
			}
		}
		if jsonOut {
			if err := writeJSON(bw, struct {
				App  string `json:"app"`
				Line int    `json:"line"`
				*blocklint.Report
			}{row.App, row.Line, rep}); err != nil {
				return err
			}
			continue
		}
		if bounds && rep.Bounds != nil {
			fmt.Fprintf(bw, "%s:%d %s bounds=%s\n", row.App, row.Line, row.Hex, boundsLine(rep.Bounds))
		}
		if verbose && len(rep.Diags) > 0 {
			fmt.Fprintf(bw, "%s:%d %s (%s)\n", row.App, row.Line, row.Hex, rep.PredictedName)
			for _, d := range rep.Diags {
				fmt.Fprintf(bw, "  %s\n", d)
			}
		}
	}
	if jsonOut {
		return nil
	}

	summary := renderSummary(len(rows), rejected, statusHist, codeHist)
	fmt.Fprint(bw, summary)
	if expect != "" {
		want, err := os.ReadFile(expect)
		if err != nil {
			return err
		}
		if norm(string(want)) != norm(summary) {
			return fmt.Errorf("histogram drifted from %s:\n--- want ---\n%s--- got ---\n%s",
				expect, string(want), summary)
		}
		fmt.Fprintf(bw, "matches %s\n", expect)
	}
	return nil
}

// renderSummary formats the audit histograms deterministically.
func renderSummary(total, rejected int, statusHist map[string]int, codeHist map[blocklint.Code]int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "blocks:   %d audited, %d statically rejected\n", total, rejected)

	statuses := make([]string, 0, len(statusHist))
	for s := range statusHist {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)
	fmt.Fprintf(&sb, "predicted:")
	for _, s := range statuses {
		fmt.Fprintf(&sb, " %s=%d", s, statusHist[s])
	}
	sb.WriteByte('\n')

	codes := make([]blocklint.Code, 0, len(codeHist))
	for c := range codeHist {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	fmt.Fprintln(&sb, "diagnostics (blocks affected):")
	if len(codes) == 0 {
		fmt.Fprintln(&sb, "  none")
	}
	for _, c := range codes {
		fmt.Fprintf(&sb, "  %s %-7s %d\n", c, c.Severity(), codeHist[c])
	}
	return sb.String()
}

// boundsLine renders a one-line summary of a block's static cycle bounds.
func boundsLine(b *bound.Bounds) string {
	s := fmt.Sprintf("[%.2f, %.2f] cycles/iter (dep=%.2f port=%.2f fe=%.2f) bottleneck=%s",
		b.Lower, b.Upper, b.DepChain, b.PortPressure, b.FrontEnd, b.VerdictString())
	if b.Vacuous {
		s += " VACUOUS"
	}
	return s
}

func printReport(w io.Writer, label string, rep *blocklint.Report, bounds bool) {
	if label != "" {
		fmt.Fprintf(w, "%s:\n", label)
	}
	fmt.Fprintf(w, "block:      %d instructions (%s)\n", rep.NumInsts, rep.Hex)
	exact := "conservative"
	if rep.Exact {
		exact = "guaranteed"
	}
	fmt.Fprintf(w, "predicted:  %s (%s)\n", rep.PredictedName, exact)
	if bounds && rep.Bounds != nil {
		fmt.Fprintf(w, "bounds:     %s\n", boundsLine(rep.Bounds))
	}
	if rep.Facts != nil {
		f := rep.Facts
		fmt.Fprintf(w, "unroll:     %d and %d (%d code bytes at the high factor)\n",
			f.UnrollLo, f.UnrollHi, f.CodeBytes)
		fmt.Fprintf(w, "dep height: %d cycles/iteration (critical path %d)\n", f.DepHeight, f.CritLatency)
		if len(f.LoopCarried) > 0 {
			fmt.Fprintf(w, "carried:    %s\n", strings.Join(f.LoopCarried, " "))
		}
		for _, m := range f.Mem {
			dir := "load"
			if m.Stores && m.Loads {
				dir = "load+store"
			} else if m.Stores {
				dir = "store"
			}
			fmt.Fprintf(w, "mem:        inst %d %s %s size %d disp %d", m.Inst, dir, m.Class, m.Size, m.Disp)
			if m.Observed {
				fmt.Fprintf(w, " (align %d, %d page(s)", m.Align, m.Pages)
				if m.StrideKnown {
					fmt.Fprintf(w, ", stride %d", m.Stride)
				}
				if m.Splits {
					fmt.Fprint(w, ", line-splitting")
				}
				fmt.Fprint(w, ")")
			}
			fmt.Fprintln(w)
		}
	}
	for _, d := range rep.Diags {
		fmt.Fprintf(w, "diag:       %s\n", d)
	}
}

// norm canonicalizes line endings and trailing whitespace for the golden
// comparison.
func norm(s string) string {
	lines := strings.Split(strings.ReplaceAll(s, "\r\n", "\n"), "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " \t")
	}
	return strings.TrimRight(strings.Join(lines, "\n"), "\n")
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}
