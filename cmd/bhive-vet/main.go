// Command bhive-vet runs the repository's custom static-analysis passes
// (internal/analyzers) over the module: exitcheck, which confines
// process-terminating calls to main.main/main.run so deferred cache
// flushes cannot be skipped, and nanaggr, which rejects NaN-unsafe
// float64 accumulation of internal/stats results.
//
// It is a self-contained, stdlib-only driver — no go/analysis framework
// and no vettool plumbing — so it runs anywhere the repo builds:
//
//	go run ./cmd/bhive-vet ./...
//	go run ./cmd/bhive-vet ./internal/harness ./cmd/bhive-eval
//
// Exit status is 1 when any finding is reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bhive/internal/analyzers"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil && err != flag.ErrHelp {
		fmt.Fprintln(os.Stderr, "bhive-vet:", err)
		code = 2
	}
	os.Exit(code)
}

func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("bhive-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	passes := analyzers.All()
	if *list {
		for _, a := range passes {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*analyzers.Analyzer
		for _, a := range passes {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			return 2, fmt.Errorf("unknown analyzer %q", name)
		}
		passes = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		return 2, err
	}
	findings, err := analyzers.Check(modRoot, patterns, passes)
	if err != nil {
		return 2, err
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "bhive-vet: %d finding(s)\n", len(findings))
		return 1, nil
	}
	return 0, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so the driver works from any subdirectory of the repo.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
