package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bhive/internal/backend"
)

func runRecord(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

// emptyCorpus writes a header-only corpus CSV: syntactically valid,
// zero records.
func emptyCorpus(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(path, []byte("app,hex,freq\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{}, "-o is required"},
		{[]string{"-o", "x.trace", "-uarch", "alderlake"}, "alderlake"},
		{[]string{"-o", "x.trace", "-backend", "counter:nope"}, "unknown source"},
		{[]string{"-o", "x.trace", "-backend", "counter:perf"}, "perf_event_open"},
		{[]string{"-o", "x.trace", "-corpus", "/no/such.csv"}, "no such file"},
		{[]string{"-o", "x.trace", "-corpus", emptyCorpus(t)}, "empty corpus"},
	}
	for _, c := range cases {
		_, _, err := runRecord(t, c.args...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want error containing %q", c.args, err, c.want)
		}
	}
}

// TestRunRecordsStubSweep drives run() in process over a tiny generated
// corpus and checks the published trace, the summary, and the protocol
// stats line.
func TestRunRecordsStubSweep(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "out.trace")
	stdout, _, err := runRecord(t,
		"-o", trace, "-uarch", "haswell,skylake", "-scale", "0.0002", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := backend.OpenTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Name() != "counter" || rb.Len() == 0 {
		t.Fatalf("trace: name=%q entries=%d", rb.Name(), rb.Len())
	}
	for _, want := range []string{"recorded ", "x 2 uarch", "ok", "protocol: "} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestRunErrorPublishesNothing: a sweep that cannot even start must not
// leave anything at -o, and must not disturb an existing trace there.
func TestRunErrorPublishesNothing(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.trace")
	if err := os.WriteFile(trace, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runRecord(t, "-o", trace, "-corpus", emptyCorpus(t)); err == nil {
		t.Fatal("empty corpus accepted")
	}
	got, err := os.ReadFile(trace)
	if err != nil || string(got) != "previous" {
		t.Fatalf("existing trace disturbed: %q, %v", got, err)
	}
}
