// Command bhive-record sweeps a corpus through a measurement backend and
// records every measurement into a replayable content-addressed trace —
// the tool that turns a machine (or the deterministic stub) into ground
// truth that bhive-eval can cross-validate against hermetically.
//
// Usage:
//
//	bhive-record -o hsw.trace -uarch haswell
//	bhive-record -o all.trace -backend counter:stub:42 -scale 0.001
//	bhive-record -o hsw.trace -corpus blocks.csv -uarch haswell -progress
//
// The trace appears at -o only when the sweep completes: recording goes
// through backend.Recorder's temp-file-and-rename protocol, so an
// interrupted or crashed sweep leaves any previous trace untouched.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bhive/internal/backend"
	"bhive/internal/corpus"
	"bhive/internal/counter"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
)

func main() {
	code := 0
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "bhive-record:", err)
		}
		code = 1
	}
	os.Exit(code)
}

// run is the whole command behind a single exit point, the same shape as
// bhive-eval: the one cleanup that matters — closing (and thereby
// publishing or discarding) the trace — runs on every path.
func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("bhive-record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "", "trace output path (required; published atomically on success)")
		spec     = fs.String("backend", "counter", "measurement backend to record: "+backend.SpecGrammar())
		corpusF  = fs.String("corpus", "", "load the corpus from a bhive-collect CSV instead of generating it")
		asmF     = fs.String("asm", "", "load the corpus from an assembly listing ('@ app [freq]' headers, Intel or AT&T instructions)")
		scale    = fs.Float64("scale", 0.01, "generated-corpus scale (1.0 = the paper's 358,561 blocks)")
		seed     = fs.Int64("seed", 7, "generated-corpus seed")
		arch     = fs.String("uarch", "", "comma-separated microarchitectures to measure (default: all)")
		progress = fs.Bool("progress", false, "print a progress line per 100 blocks to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}

	cpus := uarch.All()
	if *arch != "" {
		cpus = cpus[:0]
		for _, name := range strings.Split(*arch, ",") {
			cpu, cerr := uarch.ByName(strings.TrimSpace(name))
			if cerr != nil {
				return cerr
			}
			cpus = append(cpus, cpu)
		}
	}

	if *corpusF != "" && *asmF != "" {
		return fmt.Errorf("-corpus and -asm are mutually exclusive")
	}
	var recs []corpus.Record
	switch {
	case *corpusF != "":
		f, oerr := os.Open(*corpusF)
		if oerr != nil {
			return oerr
		}
		recs, err = corpus.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	case *asmF != "":
		f, oerr := os.Open(*asmF)
		if oerr != nil {
			return oerr
		}
		recs, err = corpus.ReadAsm(f)
		f.Close()
		if err != nil {
			return err
		}
	default:
		recs = corpus.GenerateAll(*scale, *seed)
	}
	if len(recs) == 0 {
		return fmt.Errorf("empty corpus")
	}

	inner, err := backend.Parse(*spec, backend.Options{})
	if err != nil {
		return err
	}
	if cb, ok := inner.(*counter.Backend); ok && cb.Engine().Unfenced() {
		fmt.Fprintln(stderr, "bhive-record: warning: measurement environment is not fenced (CPU/frequency unpinned); recording in degraded wider-tolerance mode, trace fingerprint flags it")
	}
	rec, err := backend.NewRecorder(inner, *out)
	if err != nil {
		inner.Close()
		return err
	}
	defer func() {
		if cerr := rec.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	// Sequential, deterministic sweep order (corpus order × µarch order):
	// entries are content-addressed so replay never depends on order, but
	// a stable byte-for-byte trace lets CI diff two recordings directly.
	statuses := make(map[profiler.Status]int)
	total := 0
	for i, r := range recs {
		for _, cpu := range cpus {
			m := rec.Measure(r.Block, cpu)
			statuses[m.Status]++
			total++
		}
		if *progress && (i+1)%100 == 0 {
			fmt.Fprintf(stderr, "bhive-record: %d/%d blocks\n", i+1, len(recs))
		}
	}

	fmt.Fprintf(stdout, "recorded %d measurements (%d blocks x %d uarch) with %s\n",
		total, len(recs), len(cpus), rec.Fingerprint())
	for s := profiler.StatusOK; s <= profiler.StatusUnstable; s++ {
		if n := statuses[s]; n > 0 {
			fmt.Fprintf(stdout, "  %-12s %d\n", s.String(), n)
		}
	}
	if cb, ok := inner.(*counter.Backend); ok {
		st := cb.Engine().Stats()
		fmt.Fprintf(stdout, "protocol: %d runs, %d warmups, %d samples filtered, %d timeouts, %d run retries, %d round retries, %d unstable\n",
			st.Runs.Load(), st.Warmups.Load(), st.FilteredSamples.Load(),
			st.Timeouts.Load(), st.RunRetries.Load(), st.MeasRetries.Load(), st.Unstable.Load())
	}
	return nil
}
