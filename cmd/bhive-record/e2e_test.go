package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bhive/internal/backend"
)

// buildRecord compiles the real binary. The in-process tests cover
// run()'s logic; this covers crash semantics only a separate process
// can show: SIGKILL leaves no chance for deferred cleanup.
func buildRecord(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bhive-record")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestE2ERecordKillReplay is the crash-safety contract end to end: a
// recording killed mid-sweep must leave the previously published trace
// byte-identical (never torn, never half-replaced), and a clean re-run
// over the same corpus must publish a replayable trace byte-identical
// to an independent recording of the same sweep.
func TestE2ERecordKillReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildRecord(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "hsw.trace")

	record := func(out string, scale string) {
		t.Helper()
		cmd := exec.Command(bin, "-o", out, "-uarch", "haswell", "-scale", scale, "-seed", "7")
		if outB, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("record: %v\n%s", err, outB)
		}
	}

	// A first sweep publishes the trace this test must see survive.
	record(trace, "0.0002")
	good, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}

	// A bigger sweep to the same path, killed as soon as its progress
	// output proves measurement is underway. SIGKILL: no deferred Close,
	// no rename — the worst crash the Recorder protocol must absorb.
	cmd := exec.Command(bin, "-o", trace, "-uarch", "haswell", "-scale", "0.02", "-seed", "7", "-progress")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	progressed := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "blocks") {
			progressed = true
			break
		}
	}
	if !progressed {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("recording produced no progress output to kill against")
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	if ee, ok := err.(*exec.ExitError); !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("killed process exited with %v, want SIGKILL", err)
	}

	after, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("published trace gone after crash: %v", err)
	}
	if !bytes.Equal(after, good) {
		t.Fatal("crash mid-record tore the previously published trace")
	}

	// The crash strands a hidden temp file; a clean re-run over the same
	// path must ignore it, republish, and the result must replay and be
	// byte-identical to an independent recording of the same sweep.
	record(trace, "0.0002")
	record(filepath.Join(dir, "ref.trace"), "0.0002")
	got, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(filepath.Join(dir, "ref.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("re-recorded trace differs from an independent recording of the same sweep")
	}
	rb, err := backend.OpenTrace(trace)
	if err != nil {
		t.Fatalf("re-recorded trace does not replay: %v", err)
	}
	if rb.Name() != "counter" || rb.Len() == 0 {
		t.Fatalf("replayed trace: name=%q entries=%d", rb.Name(), rb.Len())
	}

	// Give the killed process's file handles a moment on slow CI, then
	// confirm the stranded temp is the only residue.
	time.Sleep(10 * time.Millisecond)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if name := e.Name(); name != "hsw.trace" && name != "ref.trace" &&
			!strings.HasPrefix(name, ".hsw.trace.tmp-") {
			t.Errorf("unexpected file in trace dir: %s", name)
		}
	}
}
